// Pluggable message-channel abstraction between the online engine's
// computation nodes (paper Fig. 2: device node, edge coordinator + workers,
// cloud node).
//
// The engine stays the single orchestrator: it walks the plan, records the
// transcript, and calls the transport at every point where a tensor crosses a
// node boundary or a layer executes on a node it does not host. Because the
// transcript is a pure function of the plan (never of the payload bytes), all
// transports produce byte-identical transcripts, and the lossless invariant —
// distributed output bitwise-equal to exec::Executor — is checked on every one:
//
//   * InProcessTransport    — every node shares the coordinator's address
//                             space; tensors pass by reference (zero-copy,
//                             exactly the pre-transport engine behaviour).
//   * SerializingLoopback   — nodes still share the address space, but every
//                             inter-node tensor round-trips through
//                             encode_envelope/decode_envelope, proving
//                             losslessness survives the wire format.
//   * SocketTransport       — nodes are separate OS processes (the d3_node
//                             worker binary) reached over localhost TCP; see
//                             socket_transport.h.
//
// Slot addressing: slot 0 holds the raw network input, slot i+1 holds layer
// i's output — the same indexing as the engine's per-request `sent` table.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "dnn/network.h"
#include "dnn/tensor.h"
#include "runtime/message.h"

namespace d3::rpc {

class TransportError : public std::runtime_error {
 public:
  explicit TransportError(const std::string& what) : std::runtime_error("rpc: " + what) {}
};

// A node lost its per-request state mid-call: either its channel died (the
// worker process is gone, possibly already respawned — see
// SocketTransport::set_reconnect) or a fresh worker incarnation answered
// kErrorState because it never saw this request's history. Distinct from plain
// TransportError so recovery outcomes are never mistaken for retryable
// per-call failures. Carries what the engine's tier-granular recovery needs:
// which node lost its state, and whether the channel is serviceable again
// (reconnect + kConfig replay succeeded), in which case the engine can reopen
// the request on the node, re-seed the lost slots from coordinator-held
// boundary tensors, and re-run only the interrupted tier.
class ChannelDied : public TransportError {
 public:
  ChannelDied(std::string node, bool channel_restored, const std::string& what)
      : TransportError(what), node_(std::move(node)), restored_(channel_restored) {}

  // The computation node whose per-request state is gone ("device0", a tile
  // worker "edge3", ...). Empty when unknown.
  const std::string& node() const { return node_; }
  // True when the node's channel is healthy again (fresh process, kConfig
  // replayed) and only the per-request state needs rebuilding.
  bool channel_restored() const { return restored_; }

 private:
  std::string node_;
  bool restored_ = false;
};

// A worker rejected a verb because this coordinator's fencing epoch is stale:
// a successor coordinator (higher incarnation number in its kConfig) already
// owns the worker, and every frame from the deposed incarnation is answered
// kFenced before any state mutation. Deliberately NOT a ChannelDied — the
// channel is healthy and the worker state intact; there is nothing to recover
// here. The deposed coordinator must stop driving these workers, so the error
// propagates out of the engine's recovery machinery to its caller.
class Fenced : public TransportError {
 public:
  Fenced(std::string node, std::uint64_t epoch)
      : TransportError("coordinator fenced by node " + node + ": a successor holds epoch " +
                       std::to_string(epoch)),
        node_(std::move(node)),
        epoch_(epoch) {}

  // The worker that rejected the frame.
  const std::string& node() const { return node_; }
  // The highest incarnation number the worker has seen (the successor's).
  std::uint64_t epoch() const { return epoch_; }

 private:
  std::string node_;
  std::uint64_t epoch_ = 0;
};

// A worker rejected a weights-elided kConfig because the weights hash it holds
// (from its boot bundle or an earlier full kConfig) is not the hash the
// coordinator named: coordinator and worker disagree about the deployed model
// version. Rejected before any state mutation, and — like Fenced — NOT a
// ChannelDied: the channel is healthy and there is nothing to recover. Version
// skew is an operator problem (recompile/redistribute the bundles), so the
// error propagates out of the engine's recovery machinery to its caller.
class BundleMismatch : public TransportError {
 public:
  BundleMismatch(std::string node, std::uint64_t worker_hash, std::uint64_t wanted_hash)
      : TransportError("node " + node + " holds weights hash " +
                       std::to_string(worker_hash) + ", coordinator expected " +
                       std::to_string(wanted_hash) +
                       " (stale deployment bundle? recompile with d3c)"),
        node_(std::move(node)),
        worker_hash_(worker_hash),
        wanted_hash_(wanted_hash) {}

  const std::string& node() const { return node_; }
  // The hash the worker holds (0 = it was never configured at all).
  std::uint64_t worker_hash() const { return worker_hash_; }
  std::uint64_t wanted_hash() const { return wanted_hash_; }

 private:
  std::string node_;
  std::uint64_t worker_hash_ = 0;
  std::uint64_t wanted_hash_ = 0;
};

// Tile scatter/gather messages are intra-edge and not slot-addressed; they
// carry this sentinel so a transport never files them in a node's slot table.
inline constexpr std::uint64_t kNoSlot = ~std::uint64_t{0};

class Transport {
 public:
  virtual ~Transport() = default;
  virtual std::string name() const = 0;

  // Per-request lifecycle: remote transports allocate (and free) per-request
  // slot state on every node. close_request must be idempotent and must not
  // throw — it runs on request teardown paths.
  virtual std::uint64_t open_request() = 0;
  virtual void close_request(std::uint64_t request) noexcept = 0;

  // Re-opens a *specific* request id after a coordinator failover: the standby
  // replays the journalled id so the workers' surviving per-request state
  // (idempotent kBegin never wipes slots) lines up with the restored engine
  // state. Transports that allocate ids must also advance their counter past
  // `request` so fresh requests never collide with restored ones. The base
  // implementation throws — only transports with per-node request state can
  // meaningfully resume one.
  virtual void open_request_as(std::uint64_t request);

  // Places a coordinator-held tensor at `node` under `slot` with no message
  // semantics — used for the raw input on the device node, which never crosses
  // a tier boundary. No-op for address-space-sharing transports.
  virtual void seed(std::uint64_t request, const std::string& node, std::uint64_t slot,
                    const dnn::Tensor& tensor);

  // Ships `tensor` from meta.from_node to meta.to_node under `slot` (kNoSlot
  // for VSM tile traffic). Returns the tensor as materialised at the
  // destination when the destination shares the coordinator's address space
  // and consumers should read the wire copy (SerializingLoopback); nullopt
  // when the engine keeps using its own reference (in-process zero-copy) or
  // when the destination is a remote process.
  virtual std::optional<dnn::Tensor> send(std::uint64_t request,
                                          const runtime::MessageRecord& meta,
                                          std::uint64_t slot, const dnn::Tensor& tensor) = 0;

  // Runs layer `layer` / the VSM fused-tile stack on `node`, reading and
  // writing that node's slots. Returns false when `node` is hosted in the
  // coordinator's process — the engine then computes locally.
  virtual bool run_layer(std::uint64_t request, const std::string& node, dnn::LayerId layer);
  virtual bool run_stack(std::uint64_t request, const std::string& node);

  // Fetches `slot` back from `node` into the coordinator. Only meaningful for
  // transports hosting `node` remotely; the base implementation throws.
  virtual dnn::Tensor fetch(std::uint64_t request, const std::string& node,
                            std::uint64_t slot);

  // --- Asynchronous facade (issue/complete pairs) ---------------------------
  //
  // The blocking verbs above are round-trips: the caller's thread idles for
  // the full wire wait. The issue_* forms split each verb into an *issue*
  // (request written — or queued for a pipelined flush — and an OpHandle
  // returned) and a *completion* (the handle polled or waited on), so an
  // event-driven caller (OnlineEngine::step_async under ServingReactor
  // readiness dispatch) can park a request on its outstanding handles and
  // keep every other channel busy meanwhile.
  //
  // Contract:
  //   * An *invalid* (default-constructed) handle means the verb was not
  //     handled remotely — the same signal as run_layer() returning false —
  //     and the caller proceeds locally. issue_seed/issue_send on a non-remote
  //     node return a completed no-op handle instead (their blocking forms are
  //     no-ops there, not local-fallback signals).
  //   * Issue-time failures (dead channel detected while writing) throw
  //     exactly like the blocking verb. *Completion* failures are stored in
  //     the handle — poll() still returns true and error() carries the
  //     exception (ChannelDied for a died channel, TransportError for a
  //     worker-reported failure) — so one died channel fails its ops without
  //     unwinding the caller mid-settle.
  //   * Per channel, replies complete strictly in issue order (the worker
  //     serve loop is serial); any thread draining a channel completes
  //     whatever op is at the front of its queue, so blocking and issued
  //     calls interleave safely on one channel.
  //
  // The base implementations run the blocking verb immediately and return an
  // already-completed handle, so InProcessTransport, SerializingLoopback and
  // decorators (FaultInjectionTransport) keep their exact semantics — the
  // engine's async walk degenerates to the blocking walk on them.

  // One outstanding issued operation. Completion state is owned by the
  // transport; the handle is a shared view.
  class AsyncOp {
   public:
    virtual ~AsyncOp() = default;
    // Non-blocking: flushes any queued request bytes, drains whatever replies
    // are ready, and returns true when this op has completed (possibly with a
    // stored error).
    virtual bool poll() = 0;
    // Blocks until completed (never throws; errors land in `error`).
    virtual void wait() = 0;
    // True when the op has already been observed complete — no syscalls, so
    // event loops may sweep many handles cheaply (a reply may be drained by
    // any thread servicing the channel, not just this op's waiter).
    virtual bool settled() const { return true; }
    // The fd whose readability signals progress (-1 when completion is
    // immediate). Calling fd() flushes queued request bytes first: a caller
    // about to sleep on readability must have the request on the wire.
    virtual int fd() { return -1; }

    // Valid once completed:
    std::exception_ptr error;            // null = success
    std::optional<dnn::Tensor> tensor;   // issue_fetch result / issue_send wire copy
    std::uint64_t bytes = 0;             // payload bytes the op moved
  };

  // Value-semantic wrapper: invalid (default) = "not handled remotely".
  class OpHandle {
   public:
    OpHandle() = default;
    explicit OpHandle(std::shared_ptr<AsyncOp> op) : op_(std::move(op)) {}
    bool valid() const { return op_ != nullptr; }
    explicit operator bool() const { return valid(); }
    bool poll() { return op_->poll(); }
    void wait() { op_->wait(); }
    bool settled() const { return op_->settled(); }
    int fd() { return op_->fd(); }
    const std::exception_ptr& error() const { return op_->error; }
    void rethrow() const {
      if (op_->error) std::rethrow_exception(op_->error);
    }
    std::optional<dnn::Tensor>& tensor() { return op_->tensor; }
    std::uint64_t bytes() const { return op_->bytes; }

   private:
    std::shared_ptr<AsyncOp> op_;
  };

  virtual OpHandle issue_seed(std::uint64_t request, const std::string& node,
                              std::uint64_t slot, const dnn::Tensor& tensor);
  virtual OpHandle issue_send(std::uint64_t request, const runtime::MessageRecord& meta,
                              std::uint64_t slot, const dnn::Tensor& tensor);
  virtual OpHandle issue_run_layer(std::uint64_t request, const std::string& node,
                                   dnn::LayerId layer);
  virtual OpHandle issue_run_stack(std::uint64_t request, const std::string& node);
  virtual OpHandle issue_fetch(std::uint64_t request, const std::string& node,
                               std::uint64_t slot);

  // Async admission: allocates a request id and *issues* the per-node kBegin
  // round-trips, appending one handle per remote node to `ops`. The request id
  // is usable immediately — per-channel FIFO ordering guarantees any verb
  // issued afterwards lands behind its node's kBegin — but the caller must
  // settle every handle (and check errors) before trusting the request is
  // open everywhere. The base implementation is the blocking open_request()
  // and appends nothing.
  virtual std::uint64_t issue_open_request(std::vector<OpHandle>& ops);

  // --- Mid-request recovery -------------------------------------------------
  //
  // Re-opens `request`'s slot state on `node` after ChannelDied reported the
  // node's per-request state lost but the channel restored. Returns true when
  // the node is hosted remotely (the request was re-begun and payload bytes
  // re-seeded into it will really cross a wire); false when the node lives in
  // the coordinator's process and there is nothing to rebuild. The engine uses
  // the return value to keep Stats::recovery_bytes an honest count of bytes
  // actually re-moved.
  virtual bool reopen(std::uint64_t request, const std::string& node);

  // Drops tile workers whose channel died with no way back (no reconnect hook)
  // from the shard map, so the surviving workers absorb their tiles on the
  // next run of the interrupted tier. Returns the number of workers removed.
  virtual std::size_t prune_tile_workers() { return 0; }

  // --- Peer-to-peer channels ------------------------------------------------
  //
  // Attempts to ship meta's tensor *directly* from the producer's node to the
  // consumer's node over a peer channel, bypassing the coordinator entirely
  // (the producer already holds `slot`; the coordinator never sees the bytes).
  // Returns true when the transfer happened peer-to-peer; false when no such
  // channel exists and the caller must relay via fetch() + send(). The base
  // implementation (and every address-space-sharing transport) returns false.
  virtual bool send_peer(std::uint64_t request, const runtime::MessageRecord& meta,
                         std::uint64_t slot);

  // --- Buddy replication (coordinator failover) -----------------------------
  //
  // Attempts to deliver meta's tensor to meta.to_node out of the *buddy*
  // node's replica store (boundary tensors pushed there at ship time via
  // kPutReplica) over a peer channel — the failed-over coordinator never
  // re-materialises the payload. Returns true when the buddy held the slot
  // and pushed it; false when no buddy is configured or the buddy never saw
  // this slot (replication is best-effort), in which case the caller falls
  // back to the relay path. The base implementation returns false.
  virtual bool replica_push(std::uint64_t request, const runtime::MessageRecord& meta,
                            std::uint64_t slot);

  // --- Proactive failure detection (heartbeats) -----------------------------
  //
  // A transport with live channels may support liveness probing: ping() runs
  // one kPing/kPong round-trip against `node`, throwing ChannelDied once the
  // configured missed-beat threshold is crossed (after attempting reconnect
  // under the node's RetryPolicy, exactly like a failed send). The base
  // implementation is a no-op — in-process nodes cannot silently die.
  virtual void ping(const std::string& node);
  // Nodes whose heartbeat is due now (interval elapsed since the last
  // confirmed liveness signal). Empty when heartbeats are disabled.
  virtual std::vector<std::string> heartbeat_targets();
  // Milliseconds until the next heartbeat anywhere falls due; -1 when
  // heartbeats are disabled (event loops fold this into their idle timeout).
  virtual int heartbeat_due_ms();
  // Convenience driver for event loops: pings every due node. ChannelDied
  // propagates per node — the caller decides whether detection-before-send is
  // fatal or merely recorded. Non-virtual: decorators intercept via ping().
  void heartbeat_poll();

  // --- Edge fan-out (multi-worker VSM tile sharding) ------------------------
  //
  // True when the VSM edge tier is served by remote tile-worker processes
  // ("edge1".."edgeN"): the engine then ships each tile's input crop with
  // put_tile, dispatches run_tile per tile (tiles of distinct workers may run
  // concurrently), and collects outputs with fetch_tile — instead of computing
  // tiles locally or delegating the whole stack to run_stack. The transport
  // owns the tile -> physical-worker shard map (tile % tile_worker_count);
  // the transcript keeps naming the *virtual* per-tile nodes, so it stays a
  // pure function of the plan. Base implementations: no workers / throw.
  virtual bool has_tile_workers() const { return false; }
  virtual std::size_t tile_worker_count() const { return 0; }
  // Physical worker node serving `tile` under the current shard map; "" when
  // tiles are not sharded across workers.
  virtual std::string tile_node(std::size_t tile) const;
  virtual void put_tile(std::uint64_t request, const runtime::MessageRecord& meta,
                        std::size_t tile, const dnn::Tensor& input);
  virtual void run_tile(std::uint64_t request, std::size_t tile);
  virtual dnn::Tensor fetch_tile(std::uint64_t request, std::size_t tile);
};

// Zero-copy transport: preserves the original in-process engine behaviour (and
// its benchmarks) exactly — send() is pure bookkeeping, every consumer reads
// the producer's tensor by reference.
class InProcessTransport final : public Transport {
 public:
  std::string name() const override { return "in-process"; }
  std::uint64_t open_request() override { return next_.fetch_add(1); }
  // Failover resume: in-process transports keep no per-request slot state
  // (the engine holds the tensors), so re-claiming a dead coordinator's id
  // only has to keep the counter strictly above it for fresh requests.
  void open_request_as(std::uint64_t request) override {
    std::uint64_t next = next_.load();
    while (next <= request && !next_.compare_exchange_weak(next, request + 1)) {
    }
  }
  void close_request(std::uint64_t) noexcept override {}
  std::optional<dnn::Tensor> send(std::uint64_t, const runtime::MessageRecord&, std::uint64_t,
                                  const dnn::Tensor&) override {
    return std::nullopt;
  }

 private:
  std::atomic<std::uint64_t> next_{1};
};

// Every inter-node tensor round-trips encode_envelope -> decode_envelope ->
// decode_tensor, and consumers compute on the decoded copy: one engine run on
// this transport proves the whole inference survives the wire format
// losslessly. Thread-safe (stats are atomics); one instance may serve any
// number of concurrent engine requests.
class SerializingLoopback final : public Transport {
 public:
  struct Stats {
    std::uint64_t messages = 0;       // envelopes round-tripped
    std::uint64_t payload_bytes = 0;  // encoded tensor bytes inside envelopes
    std::uint64_t wire_bytes = 0;     // full framed envelope bytes
  };

  std::string name() const override { return "serializing-loopback"; }
  std::uint64_t open_request() override { return next_.fetch_add(1); }
  // Same resume contract as InProcessTransport: nothing to re-open beyond
  // advancing the id counter past the resumed request.
  void open_request_as(std::uint64_t request) override {
    std::uint64_t next = next_.load();
    while (next <= request && !next_.compare_exchange_weak(next, request + 1)) {
    }
  }
  void close_request(std::uint64_t) noexcept override {}
  std::optional<dnn::Tensor> send(std::uint64_t request, const runtime::MessageRecord& meta,
                                  std::uint64_t slot, const dnn::Tensor& tensor) override;

  Stats stats() const {
    return {messages_.load(), payload_bytes_.load(), wire_bytes_.load()};
  }

 private:
  std::atomic<std::uint64_t> next_{1};
  std::atomic<std::uint64_t> messages_{0};
  std::atomic<std::uint64_t> payload_bytes_{0};
  std::atomic<std::uint64_t> wire_bytes_{0};
};

}  // namespace d3::rpc
