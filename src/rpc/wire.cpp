#include "rpc/wire.h"

#include <bit>
#include <cstring>

namespace d3::rpc {

namespace {

constexpr bool kLittleEndianHost = std::endian::native == std::endian::little;

void check_version(std::uint16_t version, const char* what) {
  if (version != kWireVersion)
    throw WireError(std::string(what) + ": unsupported wire version " + std::to_string(version));
}

}  // namespace

// --- WireWriter --------------------------------------------------------------

void WireWriter::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void WireWriter::u32(std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8)
    buf_.push_back(static_cast<std::uint8_t>(v >> shift));
}

void WireWriter::u64(std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8)
    buf_.push_back(static_cast<std::uint8_t>(v >> shift));
}

void WireWriter::f32(float v) { u32(std::bit_cast<std::uint32_t>(v)); }

void WireWriter::str(std::string_view s) {
  if (s.size() > kMaxStringBytes)
    throw WireError("string of " + std::to_string(s.size()) + " bytes exceeds wire limit");
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void WireWriter::blob(std::span<const std::uint8_t> bytes) {
  if (bytes.size() > kMaxBlobBytes)
    throw WireError("blob of " + std::to_string(bytes.size()) + " bytes exceeds wire limit");
  u64(bytes.size());
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

void WireWriter::f32_array(std::span<const float> values) {
  u64(values.size());
  f32_raw(values.data(), values.size());
}

void WireWriter::f32_raw(const float* values, std::size_t count) {
  if constexpr (kLittleEndianHost) {
    const auto* raw = reinterpret_cast<const std::uint8_t*>(values);
    buf_.insert(buf_.end(), raw, raw + count * sizeof(float));
  } else {
    for (std::size_t i = 0; i < count; ++i) f32(values[i]);
  }
}

// --- WireReader --------------------------------------------------------------

const std::uint8_t* WireReader::need(std::size_t n, const char* what) {
  if (n > remaining())
    throw WireError(std::string(what) + ": truncated (" + std::to_string(n) + " bytes needed, " +
                    std::to_string(remaining()) + " remain)");
  const std::uint8_t* at = bytes_.data() + pos_;
  pos_ += n;
  return at;
}

std::uint8_t WireReader::u8() { return *need(1, "u8"); }

std::uint16_t WireReader::u16() {
  const std::uint8_t* p = need(2, "u16");
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t WireReader::u32() {
  const std::uint8_t* p = need(4, "u32");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t WireReader::u64() {
  const std::uint8_t* p = need(8, "u64");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

float WireReader::f32() { return std::bit_cast<float>(u32()); }

std::string WireReader::str() {
  const std::uint32_t len = u32();
  if (len > kMaxStringBytes)
    throw WireError("string length " + std::to_string(len) + " exceeds wire limit");
  const std::uint8_t* p = need(len, "string");
  return std::string(reinterpret_cast<const char*>(p), len);
}

std::vector<std::uint8_t> WireReader::blob() {
  const std::uint64_t len = u64();
  if (len > kMaxBlobBytes)
    throw WireError("blob length " + std::to_string(len) + " exceeds wire limit");
  const std::uint8_t* p = need(static_cast<std::size_t>(len), "blob");
  return std::vector<std::uint8_t>(p, p + len);
}

std::vector<float> WireReader::f32_array() {
  const std::uint64_t count = u64();
  if (count > kMaxBlobBytes / sizeof(float))
    throw WireError("float array of " + std::to_string(count) + " elements exceeds wire limit");
  std::vector<float> values(static_cast<std::size_t>(count));
  f32_raw(values.data(), values.size());
  return values;
}

void WireReader::f32_raw(float* out, std::size_t count) {
  const std::uint8_t* p = need(count * sizeof(float), "float payload");
  if constexpr (kLittleEndianHost) {
    std::memcpy(out, p, count * sizeof(float));
  } else {
    for (std::size_t i = 0; i < count; ++i) {
      std::uint32_t v = 0;
      for (int b = 0; b < 4; ++b) v |= static_cast<std::uint32_t>(p[i * 4 + b]) << (8 * b);
      out[i] = std::bit_cast<float>(v);
    }
  }
}

std::span<const std::uint8_t> WireReader::rest() {
  std::span<const std::uint8_t> r = bytes_.subspan(pos_);
  pos_ = bytes_.size();
  return r;
}

void WireReader::expect_end(const char* what) const {
  if (remaining() != 0)
    throw WireError(std::string(what) + ": " + std::to_string(remaining()) +
                    " trailing bytes after payload");
}

// --- Tensor ------------------------------------------------------------------

void encode_tensor(WireWriter& w, const dnn::Tensor& tensor) {
  w.u32(kTensorMagic);
  w.u16(kWireVersion);
  const dnn::Shape& s = tensor.shape();
  w.i32(s.c);
  w.i32(s.h);
  w.i32(s.w);
  w.f32_raw(tensor.data(), tensor.size());
}

dnn::Tensor decode_tensor(WireReader& r) {
  if (r.u32() != kTensorMagic) throw WireError("tensor: bad magic");
  check_version(r.u16(), "tensor");
  const std::int32_t c = r.i32();
  const std::int32_t h = r.i32();
  const std::int32_t w = r.i32();
  if (c <= 0 || h <= 0 || w <= 0 || c > kMaxTensorDim || h > kMaxTensorDim || w > kMaxTensorDim)
    throw WireError("tensor: invalid shape " + std::to_string(c) + "x" + std::to_string(h) +
                    "x" + std::to_string(w));
  const std::int64_t elements = std::int64_t{c} * h * w;
  if (elements > kMaxTensorElements)
    throw WireError("tensor: " + std::to_string(elements) + " elements exceeds wire limit");
  dnn::Tensor tensor(dnn::Shape{c, h, w});
  r.f32_raw(tensor.data(), tensor.size());
  return tensor;
}

std::vector<std::uint8_t> encode_tensor(const dnn::Tensor& tensor) {
  WireWriter w;
  encode_tensor(w, tensor);
  return w.take();
}

dnn::Tensor decode_tensor(std::span<const std::uint8_t> bytes) {
  WireReader r(bytes);
  dnn::Tensor tensor = decode_tensor(r);
  r.expect_end("tensor");
  return tensor;
}

// --- Envelope ----------------------------------------------------------------

void encode_envelope(WireWriter& w, const Envelope& envelope) {
  w.u32(kEnvelopeMagic);
  w.u16(kWireVersion);
  w.u64(envelope.meta.seq);
  w.str(envelope.meta.from_node);
  w.str(envelope.meta.to_node);
  w.str(envelope.meta.payload);
  w.u8(static_cast<std::uint8_t>(core::index(envelope.meta.from_tier)));
  w.u8(static_cast<std::uint8_t>(core::index(envelope.meta.to_tier)));
  w.i64(envelope.meta.bytes);
  w.blob(envelope.payload);
}

Envelope decode_envelope(WireReader& r) {
  if (r.u32() != kEnvelopeMagic) throw WireError("envelope: bad magic");
  check_version(r.u16(), "envelope");
  Envelope env;
  env.meta.seq = r.u64();
  env.meta.from_node = r.str();
  env.meta.to_node = r.str();
  env.meta.payload = r.str();
  const std::uint8_t from_tier = r.u8();
  const std::uint8_t to_tier = r.u8();
  if (from_tier > 2 || to_tier > 2) throw WireError("envelope: invalid tier");
  env.meta.from_tier = static_cast<core::Tier>(from_tier);
  env.meta.to_tier = static_cast<core::Tier>(to_tier);
  env.meta.bytes = r.i64();
  if (env.meta.bytes < 0) throw WireError("envelope: negative byte count");
  env.payload = r.blob();
  return env;
}

std::vector<std::uint8_t> encode_envelope(const Envelope& envelope) {
  WireWriter w;
  encode_envelope(w, envelope);
  return w.take();
}

Envelope decode_envelope(std::span<const std::uint8_t> bytes) {
  WireReader r(bytes);
  Envelope env = decode_envelope(r);
  r.expect_end("envelope");
  return env;
}

// --- Weights -----------------------------------------------------------------

namespace {

// Expected parameter-vector sizes for one layer, mirroring
// WeightStore::random_for — the contract the kernels index by.
struct ExpectedSizes {
  std::size_t weights = 0, bias = 0, bn_scale = 0, bn_shift = 0;
};

ExpectedSizes expected_sizes(const dnn::Network& net, dnn::LayerId id) {
  const dnn::NetworkLayer& layer = net.layer(id);
  const auto in_shapes = net.input_shapes(id);
  ExpectedSizes e;
  switch (layer.spec.kind) {
    case dnn::LayerKind::kConv: {
      const std::size_t taps = static_cast<std::size_t>(layer.spec.window.kernel_w) *
                               layer.spec.window.kernel_h * in_shapes[0].c;
      e.weights = static_cast<std::size_t>(layer.spec.out_channels) * taps;
      e.bias = static_cast<std::size_t>(layer.spec.out_channels);
      break;
    }
    case dnn::LayerKind::kFullyConnected:
      e.weights = static_cast<std::size_t>(layer.spec.out_features) * in_shapes[0].elements();
      e.bias = static_cast<std::size_t>(layer.spec.out_features);
      break;
    case dnn::LayerKind::kBatchNorm:
      e.bn_scale = static_cast<std::size_t>(in_shapes[0].c);
      e.bn_shift = static_cast<std::size_t>(in_shapes[0].c);
      break;
    default:
      break;  // no parameters
  }
  return e;
}

}  // namespace

std::vector<std::uint8_t> encode_weights(const exec::WeightStore& weights,
                                         const dnn::Network& net) {
  if (weights.size() != net.num_layers())
    throw WireError("weights: store holds " + std::to_string(weights.size()) +
                    " layers, network has " + std::to_string(net.num_layers()));
  WireWriter w;
  w.u32(kWeightsMagic);
  w.u16(kWireVersion);
  w.u32(static_cast<std::uint32_t>(weights.size()));
  for (dnn::LayerId id = 0; id < weights.size(); ++id) {
    const exec::LayerWeights& lw = weights.layer(id);
    w.f32_array(lw.weights);
    w.f32_array(lw.bias);
    w.f32_array(lw.bn_scale);
    w.f32_array(lw.bn_shift);
  }
  return w.take();
}

exec::WeightStore decode_weights(std::span<const std::uint8_t> bytes,
                                 const dnn::Network& net) {
  WireReader r(bytes);
  if (r.u32() != kWeightsMagic) throw WireError("weights: bad magic");
  check_version(r.u16(), "weights");
  const std::uint32_t count = r.u32();
  if (count != net.num_layers())
    throw WireError("weights: " + std::to_string(count) + " layers on the wire, network has " +
                    std::to_string(net.num_layers()));
  std::vector<exec::LayerWeights> layers(count);
  for (std::uint32_t id = 0; id < count; ++id) {
    exec::LayerWeights& lw = layers[id];
    lw.weights = r.f32_array();
    lw.bias = r.f32_array();
    lw.bn_scale = r.f32_array();
    lw.bn_shift = r.f32_array();
    const ExpectedSizes e = expected_sizes(net, id);
    if (lw.weights.size() != e.weights || lw.bias.size() != e.bias ||
        lw.bn_scale.size() != e.bn_scale || lw.bn_shift.size() != e.bn_shift)
      throw WireError("weights: layer '" + net.layer(id).spec.name +
                      "' parameter sizes do not match the network");
  }
  r.expect_end("weights");
  return exec::WeightStore::from_layers(std::move(layers));
}

// --- Weight shards -----------------------------------------------------------

std::vector<std::uint8_t> encode_weight_shard(const exec::WeightStore& weights,
                                              const dnn::Network& net,
                                              const std::vector<bool>& keep) {
  if (weights.size() != net.num_layers())
    throw WireError("weight shard: store holds " + std::to_string(weights.size()) +
                    " layers, network has " + std::to_string(net.num_layers()));
  if (keep.size() != net.num_layers())
    throw WireError("weight shard: keep mask covers " + std::to_string(keep.size()) +
                    " layers, network has " + std::to_string(net.num_layers()));
  WireWriter w;
  w.u32(kWeightShardMagic);
  w.u16(kWireVersion);
  w.u32(static_cast<std::uint32_t>(weights.size()));
  for (dnn::LayerId id = 0; id < weights.size(); ++id) {
    w.u8(keep[id] ? 1 : 0);
    if (!keep[id]) continue;
    const exec::LayerWeights& lw = weights.layer(id);
    w.f32_array(lw.weights);
    w.f32_array(lw.bias);
    w.f32_array(lw.bn_scale);
    w.f32_array(lw.bn_shift);
  }
  return w.take();
}

WeightShard decode_weight_shard(std::span<const std::uint8_t> bytes,
                                const dnn::Network& net) {
  WireReader r(bytes);
  if (r.u32() != kWeightShardMagic) throw WireError("weight shard: bad magic");
  check_version(r.u16(), "weight shard");
  const std::uint32_t count = r.u32();
  if (count != net.num_layers())
    throw WireError("weight shard: " + std::to_string(count) +
                    " layers on the wire, network has " + std::to_string(net.num_layers()));
  WeightShard shard;
  shard.present.assign(count, false);
  std::vector<exec::LayerWeights> layers(count);
  for (std::uint32_t id = 0; id < count; ++id) {
    const std::uint8_t flag = r.u8();
    if (flag > 1)
      throw WireError("weight shard: layer " + std::to_string(id) + " has presence flag " +
                      std::to_string(flag));
    if (flag == 0) continue;
    shard.present[id] = true;
    exec::LayerWeights& lw = layers[id];
    lw.weights = r.f32_array();
    lw.bias = r.f32_array();
    lw.bn_scale = r.f32_array();
    lw.bn_shift = r.f32_array();
    const ExpectedSizes e = expected_sizes(net, id);
    if (lw.weights.size() != e.weights || lw.bias.size() != e.bias ||
        lw.bn_scale.size() != e.bn_scale || lw.bn_shift.size() != e.bn_shift)
      throw WireError("weight shard: layer '" + net.layer(id).spec.name +
                      "' parameter sizes do not match the network");
  }
  r.expect_end("weight shard");
  shard.weights = exec::WeightStore::from_layers(std::move(layers));
  return shard;
}

}  // namespace d3::rpc
