#include "rpc/node_service.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <optional>
#include <thread>
#include <unistd.h>
#include <vector>

#include "core/bundle.h"
#include "core/plan_io.h"
#include "core/vsm_executor.h"
#include "dnn/model_zoo.h"
#include "exec/executor.h"
#include "rpc/socket.h"
#include "rpc/wire.h"
#include "runtime/thread_pool.h"

namespace d3::rpc {

namespace {

// A reference to per-request state this worker incarnation does not hold —
// the telltale of a respawn after a death (the coordinator's request predates
// this process). Reported as kErrorState, naming the node whose state is gone,
// so the coordinator's tier-granular recovery can rebuild exactly that state
// (reopen + re-seed) instead of failing the request. `node` may differ from
// the replying worker: a kPushPeer relays the *consumer's* state loss through
// the producer.
class StateError : public WireError {
 public:
  StateError(std::string node, const std::string& what)
      : WireError(what), node_(std::move(node)) {}
  const std::string& node() const { return node_; }

 private:
  std::string node_;
};

class NodeService {
 public:
  // Listen mode: the service outlives coordinator connections; each accepted
  // one is attached here (and detached on hang-up) while every other piece of
  // node state — slots, replicas, peer channels, the fencing high-water mark —
  // persists. Several coordinator connections may be attached at once (an
  // active and a deposed one during a failover): each carries its own fencing
  // epoch, set by the kConfig it sent, and every verb on a connection whose
  // epoch is below the worker-wide maximum is answered kFenced before any
  // state mutation.
  NodeService() = default;

  // Borrowed connection (--connect mode): the caller owns the fd.
  void attach_coordinator(int fd) {
    coordinators_.emplace(fd, CoordinatorConn{});
    poller_.add(fd, static_cast<std::uint64_t>(fd));
  }

  // Accepted connection (--listen mode): the service owns the socket.
  void attach_coordinator(Socket socket) {
    const int fd = socket.fd();
    CoordinatorConn conn;
    conn.owned = std::move(socket);
    coordinators_.emplace(fd, std::move(conn));
    poller_.add(fd, static_cast<std::uint64_t>(fd));
  }

  void detach_coordinator(int fd) {
    const auto it = coordinators_.find(fd);
    if (it == coordinators_.end()) return;
    poller_.remove(fd);
    coordinators_.erase(it);  // closes an owned socket via RAII
  }

  bool is_coordinator(int fd) const { return coordinators_.count(fd) > 0; }
  std::size_t coordinator_count() const { return coordinators_.size(); }

  // True when `fd`'s coordinator has been deposed: a successor configured this
  // worker under a higher fencing epoch, so every frame from `fd` — kShutdown
  // included — must be rejected with kFenced.
  bool stale(int fd) const { return coordinators_.at(fd).epoch < max_epoch_; }

  Frame fenced_reply() const {
    WireWriter w;
    w.u64(max_epoch_);
    return Frame{MsgKind::kFenced, w.take()};
  }

  Poller& poller() { return poller_; }
  bool is_peer_listener(int fd) const {
    return peer_listener_.valid() && peer_listener_.fd() == fd;
  }

  // Handles one coordinator frame from connection `fd`. Returns the reply to
  // write back. The fencing gate runs before any handler: kConfig carries the
  // sender's epoch as its first field (a lower-than-max epoch is fenced, a
  // higher one deposes every other connection), and every other verb is
  // checked against the connection's last-configured epoch.
  Frame handle(const Frame& request, int fd) {
    CoordinatorConn& conn = coordinators_.at(fd);
    WireReader r(request.body);
    if (request.kind == MsgKind::kConfig) {
      const std::uint64_t epoch = r.u64();
      if (epoch < max_epoch_) return fenced_reply();
      conn.epoch = epoch;
      max_epoch_ = std::max(max_epoch_, epoch);
      return config(r);
    }
    if (conn.epoch < max_epoch_) return fenced_reply();
    switch (request.kind) {
      case MsgKind::kBegin: return begin(r);
      case MsgKind::kPut: return put(r);
      case MsgKind::kPutReplica: return put_replica(r);
      case MsgKind::kPing: return Frame{MsgKind::kPong, {}};
      case MsgKind::kRunLayer: return run_layer(r);
      case MsgKind::kRunStack: return run_stack(r);
      case MsgKind::kGet: return get(r);
      case MsgKind::kEnd: return end(r);
      case MsgKind::kPeerListen: return peer_listen(r, fd);
      case MsgKind::kConnectPeer: return connect_peer(r, conn.epoch);
      case MsgKind::kPushPeer: return push_peer(r);
      case MsgKind::kPutTile: return put_tile(r);
      case MsgKind::kRunTile: return run_tile(r);
      case MsgKind::kGetTile: return get_tile(r);
      default:
        throw WireError("node: unexpected message kind " +
                        std::to_string(static_cast<int>(request.kind)));
    }
  }

  // AOT boot from a d3c deployment bundle: the node becomes live — model
  // resolved against the zoo, weight shard decoded and validated, plan parsed
  // — before any coordinator dials in, so the first kConfig it sees may be
  // the weights-elided form. Throws on any malformation (a bundle that fails
  // to load must kill the boot, not limp into serving), including a shard
  // that does not cover every layer the plan assigns this node.
  void preload(const core::DeploymentBundle& bundle) {
    net_ = dnn::zoo::by_name(bundle.model_name);
    WeightShard shard = decode_weight_shard(bundle.shard_bytes, *net_);
    core::SerializablePlan plan = core::parse_plan_binary(bundle.plan_bytes, *net_);
    const std::vector<bool> need =
        exec::WeightStore::layers_for_node(plan, bundle.node_name);
    for (std::size_t id = 0; id < need.size(); ++id)
      if (need[id] && !shard.present[id])
        throw WireError("bundle: plan assigns layer " + std::to_string(id) + " to '" +
                        bundle.node_name + "' but the weight shard elides it");
    weights_ = std::move(shard.weights);
    weight_mask_ = std::move(shard.present);
    plan_ = std::move(plan);
    node_name_ = bundle.node_name;
    model_name_ = bundle.model_name;
    plan_hash_ = fnv1a(bundle.plan_bytes);
    weights_hash_ = bundle.weights_hash;
    vsm_workers_ = bundle.vsm_workers;
    make_pool(bundle.vsm_workers);
  }

  // Accepts one dialled peer channel: the first frame must be kPeerHello with
  // the dialling node's name; the channel replaces any previous inbound
  // channel from that peer (a reconnected worker re-dials). A misbehaving
  // dialler (no hello within the bounded wait, malformed or unexpected first
  // frame) only costs its own connection — never the serve loop, which must
  // stay responsive for the coordinator and the other peers.
  void accept_peer() {
    try {
      Socket channel = tcp_accept(peer_listener_, 1000);
      const int fd[] = {channel.fd()};
      if (poll_readable(fd, 5000) < 0) return;  // no hello in time: drop it
      const Frame hello = read_frame(channel.fd());
      if (hello.kind != MsgKind::kPeerHello) return;  // not a peer: drop it
      WireReader r(hello.body);
      const std::string peer = r.str();
      const std::uint64_t epoch = r.u64();
      r.expect_end("peer-hello");
      // Fencing propagates worker -> worker: a hello carrying a deposed
      // coordinator's epoch is rejected (the dialler relays the kFenced to its
      // own coordinator), and a higher one raises this worker's high-water
      // mark so the deposed coordinator's direct connection fences too.
      if (epoch < max_epoch_) {
        const Frame fenced = fenced_reply();
        write_frame(channel.fd(), fenced.kind, fenced.body);
        return;  // drop the channel
      }
      max_epoch_ = std::max(max_epoch_, epoch);
      for (auto it = peer_in_.begin(); it != peer_in_.end();) {
        if (it->name == peer) {
          poller_.remove(it->socket.fd());
          it = peer_in_.erase(it);
        } else {
          ++it;
        }
      }
      write_frame(channel.fd(), MsgKind::kPeerOk, {});
      poller_.add(channel.fd(), static_cast<std::uint64_t>(channel.fd()));
      peer_in_.push_back(PeerChannel{peer, std::move(channel)});
    } catch (const std::exception&) {
      // Socket/wire failure during the handshake: the RAII socket closed, the
      // dialler sees the hang-up; nothing else is affected.
    }
  }

  // Services one frame from the inbound peer channel on `fd`; a stale
  // readiness tag (the channel was dropped while servicing an earlier event)
  // is ignored.
  void serve_peer_fd(int fd) {
    for (std::size_t i = 0; i < peer_in_.size(); ++i)
      if (peer_in_[i].socket.fd() == fd) {
        serve_peer(i);
        return;
      }
  }

  // Services one frame from inbound peer channel `index` (into peer_in_).
  // Returns false when the channel was dropped — peer hang-up, a mid-frame
  // socket failure, or a desynchronised stream (anything but kPeerPut).
  // Handler-level failures (bad slot, wrong addressee) are answered with
  // kError and the channel stays up — mirroring how the coordinator
  // connection treats handler vs protocol failures.
  bool serve_peer(std::size_t index) {
    PeerChannel& channel = peer_in_.at(index);
    const auto drop = [&] {
      poller_.remove(channel.socket.fd());
      peer_in_.erase(peer_in_.begin() + static_cast<std::ptrdiff_t>(index));
      return false;
    };
    Frame frame;
    try {
      if (!read_frame_or_eof(channel.socket.fd(), frame)) return drop();
      if (frame.kind != MsgKind::kPeerPut) return drop();
      Frame reply;
      try {
        WireReader r(frame.body);
        store_peer_put(r);
        reply = Frame{MsgKind::kPeerOk, {}};
      } catch (const StateError& e) {
        // This incarnation never saw the pushed request: tell the producer so
        // it can relay the state loss (and whose state it is) upstream.
        WireWriter w;
        w.str(e.node());
        w.str(e.what());
        reply = Frame{MsgKind::kErrorState, w.take()};
      } catch (const std::exception& e) {
        WireWriter w;
        w.str(e.what());
        reply = Frame{MsgKind::kError, w.take()};
      }
      write_frame(channel.socket.fd(), reply.kind, reply.body);
    } catch (const SocketError&) {
      return drop();
    }
    return true;
  }

 private:
  struct RequestSlots {
    std::vector<std::optional<dnn::Tensor>> slots;  // 0 = input, i+1 = layer i
    std::map<std::uint64_t, dnn::Tensor> tile_in;   // VSM tile inputs by tile index
    std::map<std::uint64_t, dnn::Tensor> tile_out;  // computed tile outputs
  };

  struct PeerChannel {
    std::string name;  // the node on the other end
    Socket socket;
  };

  static Frame ok() { return Frame{MsgKind::kOk, {}}; }

  Frame config(WireReader& r) {
    const std::uint8_t form = r.u8();
    if (form > 1)
      throw WireError("config: unknown form " + std::to_string(form));
    const std::string node = r.str();
    const std::string model = r.str();
    std::vector<std::uint8_t> weight_bytes;
    std::uint64_t weights_hash = 0;
    if (form == 0) {
      // Full form: the O(model) weights blob rides along; its hash is the
      // content identity every later config is compared against.
      weight_bytes = r.blob();
      weights_hash = fnv1a(weight_bytes);
    } else {
      // Weights-elided form: O(1) — the coordinator names the hash of the
      // full-model weights bytes it would have sent and relies on this node
      // already holding them (boot bundle, or an earlier full kConfig).
      weights_hash = r.u64();
    }
    const std::vector<std::uint8_t> plan_bytes = r.blob();
    const std::uint32_t vsm_workers = r.u32();
    r.expect_end("config");
    const std::uint64_t plan_hash = fnv1a(plan_bytes);

    // Idempotent on content identity — (node, model, plan hash, weights hash,
    // pool width) — NOT on raw body bytes: a standby coordinator taking over
    // replays the same config (possibly in the other form, e.g. the elided
    // one to a bundle-booted worker), and wiping per-request slots (and buddy
    // replicas) here would destroy exactly the state the takeover needs. A
    // different identity is a genuine reconfiguration and resets everything.
    if (net_ && node == node_name_ && model == model_name_ && plan_hash == plan_hash_ &&
        weights_hash == weights_hash_ && vsm_workers == vsm_workers_)
      return ok();

    std::optional<core::SerializablePlan> plan;
    if (form == 1) {
      // The elided form can never *install* weights, so disagreement is
      // answered kBundleMismatch — naming the hash this node actually holds
      // (0 = none) — before any state mutation, and the coordinator fails
      // loudly instead of running a version-skewed model.
      if (!net_ || weights_hash != weights_hash_) {
        WireWriter w;
        w.u64(net_ ? weights_hash_ : 0);
        return Frame{MsgKind::kBundleMismatch, w.take()};
      }
      if (model != model_name_)
        throw WireError("config: model '" + model + "' does not match loaded '" +
                        model_name_ + "' despite equal weights hash");
      // Same weights, new plan (a genuine re-plan over the same deployment):
      // a sharded store must still cover every layer the new plan gives us.
      plan = core::parse_plan_binary(plan_bytes, *net_);
      const std::vector<bool> need = exec::WeightStore::layers_for_node(*plan, node);
      for (std::size_t id = 0; id < need.size(); ++id)
        if (need[id] && id < weight_mask_.size() && !weight_mask_[id])
          throw WireError("config: new plan assigns layer " + std::to_string(id) +
                          " to '" + node + "' but its weight shard elides it");
    } else {
      net_ = dnn::zoo::by_name(model);
      weights_ = decode_weights(weight_bytes, *net_);
      weight_mask_.assign(net_->num_layers(), true);
      plan = core::parse_plan_binary(plan_bytes, *net_);
    }
    node_name_ = node;
    model_name_ = model;
    plan_ = std::move(plan);
    plan_hash_ = plan_hash;
    weights_hash_ = weights_hash;
    vsm_workers_ = vsm_workers;
    make_pool(vsm_workers);
    requests_.clear();
    return ok();
  }

  void make_pool(std::uint32_t vsm_workers) {
    if (vsm_workers > 0) {
      pool_ = std::make_unique<runtime::ThreadPool>(vsm_workers);
      tile_parallel_ = [pool = pool_.get()](std::size_t n,
                                            const std::function<void(std::size_t)>& body) {
        pool->parallel_for(n, body);
      };
    } else {
      pool_.reset();
      tile_parallel_ = {};
    }
  }

  void require_configured() const {
    if (!net_) throw WireError("node: not configured");
  }

  RequestSlots& request(std::uint64_t id) {
    const auto it = requests_.find(id);
    if (it == requests_.end())
      throw StateError(node_name_, "unknown request " + std::to_string(id));
    return it->second;
  }

  const dnn::Tensor& slot_tensor(RequestSlots& req, std::uint64_t slot) {
    if (slot >= req.slots.size())
      throw WireError("node: slot " + std::to_string(slot) + " out of range");
    if (!req.slots[slot])
      throw StateError(node_name_, "slot " + std::to_string(slot) + " not present");
    return *req.slots[slot];
  }

  Frame begin(WireReader& r) {
    require_configured();
    const std::uint64_t id = r.u64();
    r.expect_end("begin");
    // Idempotent: request ids are globally unique (the coordinator never
    // reuses one), so a second kBegin — a recovery reopen racing a duplicate,
    // or a fault-injected replay — must not wipe slots already re-seeded.
    const auto [it, inserted] = requests_.try_emplace(id);
    if (inserted) it->second.slots.assign(net_->num_layers() + 1, std::nullopt);
    return ok();
  }

  // Stores an Envelope-carried tensor into a request slot; shared by the
  // coordinator's kPut, the peer channel's kPeerPut, and — with the addressee
  // check waived — the buddy-replica kPutReplica, whose envelope deliberately
  // names the *real* consumer so a failed-over coordinator can re-push it
  // peer-to-peer verbatim.
  void store_envelope(std::uint64_t id, std::uint64_t slot, Envelope env,
                      bool check_addressee = true) {
    RequestSlots& req = request(id);
    if (slot >= req.slots.size())
      throw WireError("node: put slot " + std::to_string(slot) + " out of range");
    if (check_addressee && !env.meta.to_node.empty() && env.meta.to_node != node_name_)
      throw WireError("node '" + node_name_ + "': envelope addressed to '" +
                      env.meta.to_node + "'");
    req.slots[slot] = decode_tensor(env.payload);
  }

  Frame put(WireReader& r) {
    require_configured();
    const std::uint64_t id = r.u64();
    const std::uint64_t slot = r.u64();
    Envelope env = decode_envelope(r);
    r.expect_end("put");
    store_envelope(id, slot, std::move(env));
    return ok();
  }

  Frame put_replica(WireReader& r) {
    require_configured();
    const std::uint64_t id = r.u64();
    const std::uint64_t slot = r.u64();
    Envelope env = decode_envelope(r);
    r.expect_end("put-replica");
    store_envelope(id, slot, std::move(env), /*check_addressee=*/false);
    return ok();
  }

  void store_peer_put(WireReader& r) {
    require_configured();
    const std::uint64_t id = r.u64();
    const std::uint64_t slot = r.u64();
    Envelope env = decode_envelope(r);
    r.expect_end("peer-put");
    store_envelope(id, slot, std::move(env));
  }

  Frame run_layer(WireReader& r) {
    require_configured();
    const std::uint64_t id = r.u64();
    const std::uint64_t layer = r.u64();
    r.expect_end("run-layer");
    if (layer >= net_->num_layers())
      throw WireError("node: layer id " + std::to_string(layer) + " out of range");
    RequestSlots& req = request(id);
    std::vector<const dnn::Tensor*> ins;
    ins.reserve(net_->layer(layer).inputs.size());
    for (const dnn::LayerId in : net_->layer(layer).inputs)
      ins.push_back(&slot_tensor(req, in == dnn::kNetworkInput ? 0 : in + 1));
    req.slots[layer + 1] = exec::run_layer(*net_, weights_, layer, ins);
    return ok();
  }

  Frame run_stack(WireReader& r) {
    require_configured();
    const std::uint64_t id = r.u64();
    r.expect_end("run-stack");
    if (!plan_ || !plan_->vsm) throw WireError("node: no VSM stack in the shipped plan");
    const core::FusedTilePlan& vsm = *plan_->vsm;
    RequestSlots& req = request(id);
    const dnn::LayerId in_id = net_->layer(vsm.stack.front()).inputs[0];
    const dnn::Tensor& stack_input =
        slot_tensor(req, in_id == dnn::kNetworkInput ? 0 : in_id + 1);
    // Scatter, per-tile fused execution (across this node's own worker pool)
    // and tile-order gather, all inside this process: intra-edge traffic never
    // touches the coordinator, exactly like the paper's edge cluster.
    req.slots[vsm.stack.back() + 1] =
        core::run_fused_tiles(*net_, weights_, stack_input, vsm, tile_parallel_);
    return ok();
  }

  Frame get(WireReader& r) {
    require_configured();
    const std::uint64_t id = r.u64();
    const std::uint64_t slot = r.u64();
    r.expect_end("get");
    return Frame{MsgKind::kTensor, encode_tensor(slot_tensor(request(id), slot))};
  }

  Frame end(WireReader& r) {
    const std::uint64_t id = r.u64();
    r.expect_end("end");
    requests_.erase(id);
    return ok();
  }

  // --- Peer channels ---------------------------------------------------------

  Frame peer_listen(WireReader& r, int coordinator_fd) {
    r.expect_end("peer-listen");
    // Idempotent: a coordinator re-establishing links after a sibling worker
    // died just gets the existing port back.
    if (!peer_listener_.valid()) {
      peer_port_ = 0;
      // Bind the interface the coordinator reached this worker on: peers are
      // told to dial an address observed on that same network, so the listener
      // must be reachable by that route (loopback only works single-host).
      peer_listener_ = tcp_listen_on(local_address(coordinator_fd), peer_port_);
      poller_.add(peer_listener_.fd(), static_cast<std::uint64_t>(peer_listener_.fd()));
    }
    WireWriter w;
    w.u32(peer_port_);
    return Frame{MsgKind::kOk, w.take()};
  }

  Frame connect_peer(WireReader& r, std::uint64_t epoch) {
    require_configured();
    const std::string peer = r.str();
    const std::string host = r.str();
    const std::uint32_t port = r.u32();
    r.expect_end("connect-peer");
    if (port == 0 || port > 65535)
      throw WireError("node: peer port " + std::to_string(port) + " out of range");
    // Replace any stale channel (the peer may be a reconnected fresh process).
    peer_out_.erase(peer);
    Socket channel = tcp_connect(host, static_cast<std::uint16_t>(port));
    WireWriter hello;
    hello.str(node_name_);
    // The hello carries the issuing coordinator's epoch: a peer that a
    // successor already configured rejects the stale handshake with kFenced.
    hello.u64(epoch);
    write_frame(channel.fd(), MsgKind::kPeerHello, hello.buffer());
    const Frame ack = read_frame(channel.fd());
    if (ack.kind == MsgKind::kFenced) {
      // The peer fenced this coordinator's epoch: raise our own high-water
      // mark (so the deposed coordinator's direct verbs fence here too) and
      // relay the rejection verbatim.
      WireReader fr(ack.body);
      max_epoch_ = std::max(max_epoch_, fr.u64());
      return Frame{MsgKind::kFenced, ack.body};
    }
    if (ack.kind != MsgKind::kPeerOk)
      throw WireError("node: peer '" + peer + "' rejected the channel handshake");
    peer_out_.emplace(peer, std::move(channel));
    return ok();
  }

  Frame push_peer(WireReader& r) {
    require_configured();
    const std::uint64_t id = r.u64();
    const std::uint64_t slot = r.u64();
    Envelope env = decode_envelope(r);  // metadata only; payload arrives empty
    r.expect_end("push-peer");
    const auto it = peer_out_.find(env.meta.to_node);
    if (it == peer_out_.end())
      throw WireError("node '" + node_name_ + "': no peer channel to '" + env.meta.to_node +
                      "'");
    env.payload = encode_tensor(slot_tensor(request(id), slot));
    const std::uint64_t payload_bytes = env.payload.size();
    WireWriter w;
    w.u64(id);
    w.u64(slot);
    encode_envelope(w, env);
    write_frame(it->second.fd(), MsgKind::kPeerPut, w.buffer());
    wait_peer_ack(it->second);
    WireWriter reply;
    reply.u64(payload_bytes);
    return Frame{MsgKind::kOk, reply.take()};
  }

  // Waits for the pushed tensor's kPeerOk while *also* servicing inbound peer
  // channels: two nodes pushing to each other simultaneously (two pipelined
  // requests crossing the same boundary in opposite directions) would
  // otherwise deadlock, each blocked on the other's acknowledgement.
  void wait_peer_ack(Socket& out_channel) {
    for (;;) {
      std::vector<int> fds{out_channel.fd()};
      for (const auto& in : peer_in_) fds.push_back(in.socket.fd());
      const int idx = poll_readable(fds, 30000);
      if (idx < 0) throw SocketError("peer push: timed out waiting for acknowledgement");
      if (idx == 0) {
        const Frame ack = read_frame(out_channel.fd());
        if (ack.kind == MsgKind::kErrorState) {
          // The *consumer* lost its per-request state (fresh incarnation):
          // relay exactly that — node name and all — to the coordinator, so
          // its recovery targets the consumer, not this producer.
          WireReader r(ack.body);
          const std::string lost = r.str();
          throw StateError(lost, r.str());
        }
        if (ack.kind == MsgKind::kError) {
          WireReader r(ack.body);
          throw WireError("peer rejected push: " + r.str());
        }
        if (ack.kind != MsgKind::kPeerOk)
          throw WireError("node: unexpected peer ack kind " +
                          std::to_string(static_cast<int>(ack.kind)));
        return;
      }
      serve_peer(static_cast<std::size_t>(idx - 1));
    }
  }

  // --- Edge fan-out tiles ----------------------------------------------------

  const core::FusedTilePlan& vsm_plan() const {
    if (!plan_ || !plan_->vsm) throw WireError("node: no VSM stack in the shipped plan");
    return *plan_->vsm;
  }

  Frame put_tile(WireReader& r) {
    require_configured();
    const std::uint64_t id = r.u64();
    const std::uint64_t tile = r.u64();
    Envelope env = decode_envelope(r);
    r.expect_end("put-tile");
    const core::FusedTilePlan& vsm = vsm_plan();
    if (tile >= vsm.num_tiles())
      throw WireError("node: tile " + std::to_string(tile) + " out of range");
    // Tile envelopes are addressed to the *virtual* per-tile edge node
    // ("edge<tile+1>"); this physical worker serves several of them, so no
    // to_node check — the tile index is the address.
    request(id).tile_in[tile] = decode_tensor(env.payload);
    return ok();
  }

  Frame run_tile(WireReader& r) {
    require_configured();
    const std::uint64_t id = r.u64();
    const std::uint64_t tile = r.u64();
    r.expect_end("run-tile");
    const core::FusedTilePlan& vsm = vsm_plan();
    if (tile >= vsm.num_tiles())
      throw WireError("node: tile " + std::to_string(tile) + " out of range");
    RequestSlots& req = request(id);
    const auto it = req.tile_in.find(tile);
    if (it == req.tile_in.end())
      throw StateError(node_name_, "tile " + std::to_string(tile) + " input not delivered");
    // Rebuild the exec::Tile from the shipped plan: the crop's position and
    // the full-map extent are a pure function of (plan, tile), so only the
    // tensor data ever crosses the wire.
    const exec::Region& region = vsm.tiles[tile].input_regions.front();
    const dnn::Shape expect{vsm.input_shapes.front().c, region.height(), region.width()};
    if (!(it->second.shape() == expect))
      throw WireError("node: tile " + std::to_string(tile) + " input shape " +
                      it->second.shape().to_string() + " != plan's " + expect.to_string());
    exec::Tile input;
    input.data = it->second;
    input.origin_x = region.x0;
    input.origin_y = region.y0;
    input.full_w = vsm.input_shapes.front().w;
    input.full_h = vsm.input_shapes.front().h;
    req.tile_out[tile] =
        core::run_single_tile(*net_, weights_, input, vsm, tile).data;
    return ok();
  }

  Frame get_tile(WireReader& r) {
    require_configured();
    const std::uint64_t id = r.u64();
    const std::uint64_t tile = r.u64();
    r.expect_end("get-tile");
    RequestSlots& req = request(id);
    const auto it = req.tile_out.find(tile);
    if (it == req.tile_out.end())
      throw StateError(node_name_, "tile " + std::to_string(tile) + " output not computed");
    return Frame{MsgKind::kTensor, encode_tensor(it->second)};
  }

  // One attached coordinator connection: the socket (owned in listen mode,
  // borrowed in --connect mode) and the fencing epoch its kConfig carried.
  struct CoordinatorConn {
    Socket owned;
    std::uint64_t epoch = 0;
  };

  std::map<int, CoordinatorConn> coordinators_;
  // Highest fencing epoch any kConfig or kPeerHello has carried: the fencing
  // high-water mark every verb is checked against. Persists across coordinator
  // connections (listen mode), exactly like the request slots it protects.
  std::uint64_t max_epoch_ = 0;
  Poller poller_;  // coordinators + listener + peer listener + inbound peers
  std::string node_name_;
  std::string model_name_;
  // Content identity of the applied configuration — what kConfig idempotence
  // is keyed on, and what the weights-elided form is checked against.
  // weights_hash_ is always the FULL model's encode_weights hash, even when
  // this node holds only a bundle shard (the bundle carries it verbatim).
  std::uint64_t plan_hash_ = 0;
  std::uint64_t weights_hash_ = 0;
  std::uint32_t vsm_workers_ = 0;
  // Per-layer presence in weights_: all-true after a full kConfig, the shard
  // mask after a bundle boot — checked when a new plan arrives weights-elided.
  std::vector<bool> weight_mask_;
  std::optional<dnn::Network> net_;
  exec::WeightStore weights_;
  std::optional<core::SerializablePlan> plan_;
  std::unique_ptr<runtime::ThreadPool> pool_;
  core::TileParallelFor tile_parallel_;
  std::map<std::uint64_t, RequestSlots> requests_;
  Socket peer_listener_;
  std::uint16_t peer_port_ = 0;
  std::map<std::string, Socket> peer_out_;  // channels this node pushes on
  std::vector<PeerChannel> peer_in_;        // channels peers push to us on
};

// Why the serve loop ended: the last coordinator connection hung up (only
// terminal in --connect mode) vs an explicit, un-fenced kShutdown.
enum class Hangup { kEof, kShutdown };

// Serves one ready coordinator frame on `fd`. Returns the hang-up kind when
// that connection ended (EOF, socket failure, or an honoured kShutdown);
// nullopt while it stays up. Throws nothing — a mid-frame socket failure is a
// connection death, not a service death.
std::optional<Hangup> serve_coordinator_frame(NodeService& service, int fd,
                                              const ServeOptions& options,
                                              std::uint64_t& served) {
  try {
    Frame request;
    if (!read_frame_or_eof(fd, request)) return Hangup::kEof;
    // Scripted crash point: die abruptly on the (N+1)th coordinator frame —
    // read but never answered, exactly what a SIGKILL mid-call looks like
    // from the coordinator, minus the race.
    if (served == options.crash_after_frames) ::_exit(137);
    ++served;
    if (request.kind == MsgKind::kShutdown) {
      // A deposed coordinator cannot take the worker down with it: its
      // kShutdown is fenced like every other verb.
      if (service.stale(fd)) {
        const Frame fenced = service.fenced_reply();
        write_frame(fd, fenced.kind, fenced.body, request.corr);
        return std::nullopt;
      }
      write_frame(fd, MsgKind::kOk, {}, request.corr);
      return Hangup::kShutdown;
    }
    // Emulated service latency concentrates on the compute verbs: the sleep
    // happens before the reply, so a coordinator pipelining several
    // outstanding frames sees the replies spaced by the service time —
    // exactly what the overlap bench must hide behind other channels.
    if (options.service_seconds > 0 && (request.kind == MsgKind::kRunLayer ||
                                        request.kind == MsgKind::kRunStack))
      std::this_thread::sleep_for(std::chrono::duration<double>(options.service_seconds));
    Frame reply;
    try {
      reply = service.handle(request, fd);
    } catch (const StateError& e) {
      WireWriter w;
      w.str(e.node());
      w.str(e.what());
      reply = Frame{MsgKind::kErrorState, w.take()};
    } catch (const std::exception& e) {
      WireWriter w;
      w.str(e.what());
      reply = Frame{MsgKind::kError, w.take()};
    }
    // Echo the request's correlation id: the transport matches this reply to
    // its per-channel pending-op queue.
    write_frame(fd, reply.kind, reply.body, request.corr);
  } catch (const SocketError&) {
    // The coordinator died mid-frame (SIGKILL, network fault). Every other
    // piece of node state survives for its successor.
    return Hangup::kEof;
  }
  return std::nullopt;
}

// The shared serve loop. With a `listener`, new coordinator connections are
// accepted from it and served concurrently with existing ones (an active and
// a deposed coordinator during a failover each hold a live connection); the
// loop only returns on an honoured kShutdown. Without one (--connect mode)
// the loop ends when the single coordinator connection does.
Hangup serve_until_hangup(NodeService& service, const Socket* listener,
                          const ServeOptions& options, std::uint64_t& served) {
  for (;;) {
    // One ready registration per wait: the Poller is level-triggered, so
    // still-ready channels surface again immediately, and a channel dropped
    // while servicing an earlier event can never leave a stale tag behind.
    const std::vector<std::uint64_t> ready = service.poller().wait(-1);
    if (ready.empty()) continue;
    const int rfd = static_cast<int>(ready.front());
    if (listener && rfd == listener->fd()) {
      try {
        service.attach_coordinator(tcp_accept(*listener, 1000));
      } catch (const SocketError&) {
        // A dialler that vanished between readiness and accept costs nothing.
      }
    } else if (service.is_coordinator(rfd)) {
      const std::optional<Hangup> hangup =
          serve_coordinator_frame(service, rfd, options, served);
      if (!hangup) continue;
      service.detach_coordinator(rfd);
      if (*hangup == Hangup::kShutdown) return Hangup::kShutdown;
      if (!listener && service.coordinator_count() == 0) return Hangup::kEof;
    } else if (service.is_peer_listener(rfd)) {
      service.accept_peer();
    } else {
      service.serve_peer_fd(rfd);
    }
  }
}

}  // namespace

void serve_node(int fd, const ServeOptions& options) {
  NodeService service;
  if (options.bundle) service.preload(*options.bundle);
  service.attach_coordinator(fd);
  std::uint64_t served = 0;
  serve_until_hangup(service, /*listener=*/nullptr, options, served);
}

void serve_listen_node(const Socket& listener, const ServeOptions& options) {
  NodeService service;  // persists across coordinator connections
  if (options.bundle) service.preload(*options.bundle);
  service.poller().add(listener.fd(), static_cast<std::uint64_t>(listener.fd()));
  std::uint64_t served = 0;
  serve_until_hangup(service, &listener, options, served);
}

}  // namespace d3::rpc
