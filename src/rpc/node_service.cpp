#include "rpc/node_service.h"

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "core/plan_io.h"
#include "core/vsm_executor.h"
#include "dnn/model_zoo.h"
#include "exec/executor.h"
#include "rpc/socket.h"
#include "rpc/wire.h"
#include "runtime/thread_pool.h"

namespace d3::rpc {

namespace {

class NodeService {
 public:
  Frame handle(const Frame& request) {
    WireReader r(request.body);
    switch (request.kind) {
      case MsgKind::kConfig: return config(r);
      case MsgKind::kBegin: return begin(r);
      case MsgKind::kPut: return put(r);
      case MsgKind::kRunLayer: return run_layer(r);
      case MsgKind::kRunStack: return run_stack(r);
      case MsgKind::kGet: return get(r);
      case MsgKind::kEnd: return end(r);
      default:
        throw WireError("node: unexpected message kind " +
                        std::to_string(static_cast<int>(request.kind)));
    }
  }

 private:
  struct RequestSlots {
    std::vector<std::optional<dnn::Tensor>> slots;  // 0 = input, i+1 = layer i
  };

  static Frame ok() { return Frame{MsgKind::kOk, {}}; }

  Frame config(WireReader& r) {
    node_name_ = r.str();
    const std::string model = r.str();
    const std::vector<std::uint8_t> weight_bytes = r.blob();
    const std::vector<std::uint8_t> plan_bytes = r.blob();
    const std::uint32_t vsm_workers = r.u32();
    r.expect_end("config");

    net_ = dnn::zoo::by_name(model);
    weights_ = decode_weights(weight_bytes, *net_);
    plan_ = core::parse_plan_binary(plan_bytes, *net_);
    if (vsm_workers > 0) {
      pool_ = std::make_unique<runtime::ThreadPool>(vsm_workers);
      tile_parallel_ = [pool = pool_.get()](std::size_t n,
                                            const std::function<void(std::size_t)>& body) {
        pool->parallel_for(n, body);
      };
    } else {
      pool_.reset();
      tile_parallel_ = {};
    }
    requests_.clear();
    return ok();
  }

  void require_configured() const {
    if (!net_) throw WireError("node: not configured");
  }

  RequestSlots& request(std::uint64_t id) {
    const auto it = requests_.find(id);
    if (it == requests_.end())
      throw WireError("node: unknown request " + std::to_string(id));
    return it->second;
  }

  const dnn::Tensor& slot_tensor(RequestSlots& req, std::uint64_t slot) {
    if (slot >= req.slots.size() || !req.slots[slot])
      throw WireError("node: slot " + std::to_string(slot) + " not present");
    return *req.slots[slot];
  }

  Frame begin(WireReader& r) {
    require_configured();
    const std::uint64_t id = r.u64();
    r.expect_end("begin");
    requests_[id].slots.assign(net_->num_layers() + 1, std::nullopt);
    return ok();
  }

  Frame put(WireReader& r) {
    require_configured();
    const std::uint64_t id = r.u64();
    const std::uint64_t slot = r.u64();
    Envelope env = decode_envelope(r);
    r.expect_end("put");
    RequestSlots& req = request(id);
    if (slot >= req.slots.size())
      throw WireError("node: put slot " + std::to_string(slot) + " out of range");
    if (!env.meta.to_node.empty() && env.meta.to_node != node_name_)
      throw WireError("node '" + node_name_ + "': envelope addressed to '" +
                      env.meta.to_node + "'");
    req.slots[slot] = decode_tensor(env.payload);
    return ok();
  }

  Frame run_layer(WireReader& r) {
    require_configured();
    const std::uint64_t id = r.u64();
    const std::uint64_t layer = r.u64();
    r.expect_end("run-layer");
    if (layer >= net_->num_layers())
      throw WireError("node: layer id " + std::to_string(layer) + " out of range");
    RequestSlots& req = request(id);
    std::vector<const dnn::Tensor*> ins;
    ins.reserve(net_->layer(layer).inputs.size());
    for (const dnn::LayerId in : net_->layer(layer).inputs)
      ins.push_back(&slot_tensor(req, in == dnn::kNetworkInput ? 0 : in + 1));
    req.slots[layer + 1] = exec::run_layer(*net_, weights_, layer, ins);
    return ok();
  }

  Frame run_stack(WireReader& r) {
    require_configured();
    const std::uint64_t id = r.u64();
    r.expect_end("run-stack");
    if (!plan_ || !plan_->vsm) throw WireError("node: no VSM stack in the shipped plan");
    const core::FusedTilePlan& vsm = *plan_->vsm;
    RequestSlots& req = request(id);
    const dnn::LayerId in_id = net_->layer(vsm.stack.front()).inputs[0];
    const dnn::Tensor& stack_input =
        slot_tensor(req, in_id == dnn::kNetworkInput ? 0 : in_id + 1);
    // Scatter, per-tile fused execution (across this node's own worker pool)
    // and tile-order gather, all inside this process: intra-edge traffic never
    // touches the coordinator, exactly like the paper's edge cluster.
    req.slots[vsm.stack.back() + 1] =
        core::run_fused_tiles(*net_, weights_, stack_input, vsm, tile_parallel_);
    return ok();
  }

  Frame get(WireReader& r) {
    require_configured();
    const std::uint64_t id = r.u64();
    const std::uint64_t slot = r.u64();
    r.expect_end("get");
    return Frame{MsgKind::kTensor, encode_tensor(slot_tensor(request(id), slot))};
  }

  Frame end(WireReader& r) {
    const std::uint64_t id = r.u64();
    r.expect_end("end");
    requests_.erase(id);
    return ok();
  }

  std::string node_name_;
  std::optional<dnn::Network> net_;
  exec::WeightStore weights_;
  std::optional<core::SerializablePlan> plan_;
  std::unique_ptr<runtime::ThreadPool> pool_;
  core::TileParallelFor tile_parallel_;
  std::map<std::uint64_t, RequestSlots> requests_;
};

}  // namespace

void serve_node(int fd) {
  NodeService service;
  Frame request;
  while (read_frame_or_eof(fd, request)) {
    if (request.kind == MsgKind::kShutdown) {
      write_frame(fd, MsgKind::kOk, {});
      return;
    }
    Frame reply;
    try {
      reply = service.handle(request);
    } catch (const std::exception& e) {
      WireWriter w;
      w.str(e.what());
      reply = Frame{MsgKind::kError, w.take()};
    }
    write_frame(fd, reply.kind, reply.body);
  }
}

}  // namespace d3::rpc
