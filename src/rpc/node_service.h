// Worker side of the socket transport: the body of the d3_node binary.
//
// A node process is a passive responder. After kConfig ships it the model name
// (resolved against the shared zoo), the full weights, the deployment plan and
// its pool width, it holds per-request slot state (slot 0 = raw input, slot
// i+1 = layer i's output) and answers the coordinator's kPut / kRunLayer /
// kRunStack / kGet / kEnd requests until EOF or kShutdown. All sequencing and
// transcript recording stays with the coordinating engine — the worker only
// stores tensors and runs kernels, which is why transcripts are identical on
// every transport.
#pragma once

namespace d3::rpc {

// Serves one coordinator connection on `fd` until clean EOF or kShutdown.
// Handler failures (unknown model, missing input slot, malformed body) are
// reported to the coordinator as kError replies and the loop continues;
// protocol-level failures (bad frame magic, mid-frame EOF) throw SocketError.
void serve_node(int fd);

}  // namespace d3::rpc
