// Worker side of the socket transport: the body of the d3_node binary.
//
// A node process is a passive responder driven by an epoll loop (rpc::Poller)
// over three fd classes: the coordinator connection, the node's peer listener,
// and any inbound peer channels. After kConfig ships it the model name (resolved
// against the shared zoo), the full weights, the deployment plan and its pool
// width, it holds per-request slot state (slot 0 = raw input, slot i+1 =
// layer i's output, plus per-tile VSM state for edge fan-out workers) and
// answers the coordinator's kPut / kRunLayer / kRunStack / kGet / kPutTile /
// kRunTile / kGetTile / kEnd requests until EOF or kShutdown.
//
// Peer channels (kPeerListen / kConnectPeer / kPushPeer) let a node ship a
// boundary tensor straight to the next tier's node: the coordinator still
// sequences every transfer (it sends kPushPeer and waits for the kOk), but
// the payload bytes flow worker -> worker, never through the coordinator.
// While waiting for a push acknowledgement a node keeps servicing its own
// inbound peer channels, so two nodes pushing to each other concurrently
// (pipelined requests crossing a boundary in both directions) cannot
// deadlock. All transcript recording stays with the coordinating engine — the
// worker only stores tensors and runs kernels, which is why transcripts are
// identical on every transport. docs/PROTOCOL.md is the full wire spec.
#pragma once

#include <cstdint>

#include "rpc/socket.h"

namespace d3::core {
struct DeploymentBundle;
}

namespace d3::rpc {

inline constexpr std::uint64_t kNeverCrash = ~std::uint64_t{0};

struct ServeOptions {
  // Deterministic crash injection for recovery tests: serve exactly this many
  // coordinator frames, then exit the process abruptly (no reply, no teardown)
  // when the next one arrives — indistinguishable from a SIGKILL at that exact
  // protocol point. kNeverCrash disables. d3_node exposes it as --crash-after.
  std::uint64_t crash_after_frames = kNeverCrash;
  // Emulated per-request service latency (seconds) added to each kRunLayer /
  // kRunStack — stands in for a slower remote machine's compute so overlap
  // benches measure wire-wait hiding on hosts where the real kernels are too
  // fast to matter. Cheap verbs (kPut/kGet/...) stay fast, mirroring how real
  // service time concentrates in the compute calls. d3_node: --service-ms.
  double service_seconds = 0.0;
  // AOT boot (d3_node --bundle): the node comes up already configured from
  // this d3c deployment bundle — model resolved, weight shard decoded, plan
  // parsed — before the first coordinator frame, so a coordinator may skip
  // the O(model) weights blob entirely (the weights-elided kConfig form).
  // Must outlive the serve call. nullptr = classic kConfig-only boot.
  const core::DeploymentBundle* bundle = nullptr;
};

// Serves one coordinator connection on `fd` until clean EOF or kShutdown.
// Handler failures (unknown model, missing input slot, malformed body) are
// reported to the coordinator as kError replies and the loop continues;
// references to per-request state this worker incarnation never saw (it was
// respawned after a death) are reported as kErrorState so the coordinator can
// rebuild exactly that state; protocol-level failures (bad frame magic,
// mid-frame EOF) throw SocketError.
void serve_node(int fd, const ServeOptions& options = {});

// Listen-mode worker (d3_node --listen): serves any number of concurrent
// coordinator connections accepted from `listener`, with ONE persistent node
// state across them — per-request slots, buddy replicas, and peer channels
// all survive a coordinator that hangs up or dies mid-conversation. That is
// what makes coordinator failover work: a standby coordinator dials the same
// worker, replays kConfig (idempotent — an identical config keeps the state),
// and resumes journalled requests against the slots the previous coordinator
// already seeded. Concurrent coordinators are disambiguated by the fencing
// epoch their kConfig carried: every verb from a connection whose epoch is
// below the worker-wide maximum is answered kFenced before any state
// mutation, so a deposed coordinator can never race its successor
// (PROTOCOL.md, "Fencing epochs"). Returns on kShutdown from a live-epoch
// coordinator; a coordinator EOF or socket failure just returns the
// connection to the poll set.
void serve_listen_node(const Socket& listener, const ServeOptions& options = {});

}  // namespace d3::rpc
