#include "rpc/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <ifaddrs.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

namespace d3::rpc {

namespace {

[[noreturn]] void fail_errno(const std::string& what) {
  throw SocketError(what + ": " + std::strerror(errno));
}

// Like fail_errno, but names the connection's remote end: failover logs must
// say *which* channel failed, and by the time the error surfaces the socket
// is often already closed — so the address is captured at the throw site.
[[noreturn]] void fail_errno_peer(const std::string& what, int fd) {
  const int saved = errno;
  const std::string peer = describe_peer(fd);
  errno = saved;
  throw SocketError(what + " (peer " + peer + "): " + std::strerror(saved));
}

// Full-buffer read/write loops (TCP may deliver partial chunks).
// MSG_NOSIGNAL: a peer that died mid-conversation (worker killed, reconnect
// path) must surface as SocketError/EPIPE, not as a process-killing SIGPIPE.
void write_all(int fd, const void* data, std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (len > 0) {
    ssize_t n = ::send(fd, p, len, MSG_NOSIGNAL);
    if (n < 0 && errno == ENOTSOCK) n = ::write(fd, p, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail_errno_peer("write", fd);
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
}

// Returns bytes read (== len), or 0 on EOF at the very first byte when
// `eof_ok`; EOF mid-buffer always throws.
std::size_t read_all(int fd, void* data, std::size_t len, bool eof_ok) {
  auto* p = static_cast<std::uint8_t*>(data);
  std::size_t got = 0;
  while (got < len) {
    const ssize_t n = ::read(fd, p + got, len - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail_errno_peer("read", fd);
    }
    if (n == 0) {
      if (got == 0 && eof_ok) return 0;
      throw SocketError("read: peer " + describe_peer(fd) + " closed mid-frame (" +
                        std::to_string(got) + "/" + std::to_string(len) + " bytes)");
    }
    got += static_cast<std::size_t>(n);
  }
  return got;
}

std::uint64_t load_le64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

std::uint32_t load_le32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Socket tcp_listen(std::uint16_t& port) { return tcp_listen_on("127.0.0.1", port); }

Socket tcp_listen_on(const std::string& host, std::uint16_t& port) {
  // CLOEXEC everywhere: a fork/exec'd worker must not inherit other
  // connections' fds, or its copies would keep those sockets alive and defeat
  // the EOF-based graceful shutdown of sibling workers.
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) fail_errno("socket");
  Socket sock(fd);
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
    throw SocketError("listen: bad address '" + host + "'");
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) fail_errno("bind");
  if (::listen(fd, 4) < 0) fail_errno("listen");

  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0)
    fail_errno("getsockname");
  port = ntohs(addr.sin_port);
  return sock;
}

Socket tcp_accept(const Socket& listener, int timeout_ms, bool (*abort_check)(void*),
                  void* abort_arg) {
  int waited = 0;
  for (;;) {
    pollfd pfd{listener.fd(), POLLIN, 0};
    const int slice = 100;
    const int n = ::poll(&pfd, 1, slice);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail_errno("poll");
    }
    if (n > 0) break;
    waited += slice;
    if (abort_check && abort_check(abort_arg))
      throw SocketError("accept: peer aborted before connecting");
    if (waited >= timeout_ms) throw SocketError("accept: timed out waiting for peer");
  }
  const int fd = ::accept4(listener.fd(), nullptr, nullptr, SOCK_CLOEXEC);
  if (fd < 0) fail_errno("accept");
  Socket sock(fd);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return sock;
}

Socket tcp_connect(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) fail_errno("socket");
  Socket sock(fd);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
    throw SocketError("connect: bad address '" + host + "'");
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0)
    fail_errno("connect to " + host + ":" + std::to_string(port));
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return sock;
}

namespace {

// 21-byte header: u32 magic | u8 kind | u64 correlation id | u64 body length.
constexpr std::size_t kFrameHeaderBytes = 21;

void encode_header(std::uint8_t* header, MsgKind kind, std::uint64_t corr,
                   std::uint64_t len) {
  for (int i = 0; i < 4; ++i) header[i] = static_cast<std::uint8_t>(kFrameMagic >> (8 * i));
  header[4] = static_cast<std::uint8_t>(kind);
  for (int i = 0; i < 8; ++i) header[5 + i] = static_cast<std::uint8_t>(corr >> (8 * i));
  for (int i = 0; i < 8; ++i) header[13 + i] = static_cast<std::uint8_t>(len >> (8 * i));
}

}  // namespace

void write_frame(int fd, MsgKind kind, std::span<const std::uint8_t> body,
                 std::uint64_t corr) {
  if (body.size() > kMaxFrameBytes)
    throw SocketError("frame body of " + std::to_string(body.size()) + " bytes exceeds limit");
  std::uint8_t header[kFrameHeaderBytes];
  encode_header(header, kind, corr, body.size());
  write_all(fd, header, sizeof(header));
  if (!body.empty()) write_all(fd, body.data(), body.size());
}

void encode_frame(std::vector<std::uint8_t>& out, MsgKind kind,
                  std::span<const std::uint8_t> body, std::uint64_t corr) {
  if (body.size() > kMaxFrameBytes)
    throw SocketError("frame body of " + std::to_string(body.size()) + " bytes exceeds limit");
  std::uint8_t header[kFrameHeaderBytes];
  encode_header(header, kind, corr, body.size());
  out.insert(out.end(), header, header + sizeof(header));
  out.insert(out.end(), body.begin(), body.end());
}

void write_bytes(int fd, std::span<const std::uint8_t> bytes) {
  if (!bytes.empty()) write_all(fd, bytes.data(), bytes.size());
}

namespace {

Frame read_frame_impl(int fd, bool eof_ok, bool& eof) {
  std::uint8_t header[kFrameHeaderBytes];
  eof = false;
  if (read_all(fd, header, sizeof(header), eof_ok) == 0) {
    eof = true;
    return {};
  }
  if (load_le32(header) != kFrameMagic)
    throw SocketError("frame: bad magic from peer " + describe_peer(fd));
  const std::uint8_t kind = header[4];
  const std::uint64_t corr = load_le64(header + 5);
  const std::uint64_t len = load_le64(header + 13);
  if (len > kMaxFrameBytes)
    throw SocketError("frame: body length " + std::to_string(len) + " exceeds limit");
  Frame frame;
  frame.kind = static_cast<MsgKind>(kind);
  frame.corr = corr;
  frame.body.resize(static_cast<std::size_t>(len));
  if (len > 0) read_all(fd, frame.body.data(), frame.body.size(), false);
  return frame;
}

}  // namespace

Frame read_frame(int fd) {
  bool eof = false;
  Frame frame = read_frame_impl(fd, false, eof);
  return frame;
}

bool read_frame_or_eof(int fd, Frame& out) {
  bool eof = false;
  out = read_frame_impl(fd, true, eof);
  return !eof;
}

namespace {

std::string dotted_quad(const sockaddr_in& addr) {
  char buf[INET_ADDRSTRLEN] = {};
  if (::inet_ntop(AF_INET, &addr.sin_addr, buf, sizeof(buf)) == nullptr)
    fail_errno("inet_ntop");
  return buf;
}

}  // namespace

std::string peer_address(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getpeername(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0)
    fail_errno("getpeername");
  return dotted_quad(addr);
}

std::string describe_peer(int fd) noexcept {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (fd < 0 || ::getpeername(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0 ||
      addr.sin_family != AF_INET)
    return "?";
  char buf[INET_ADDRSTRLEN] = {};
  if (::inet_ntop(AF_INET, &addr.sin_addr, buf, sizeof(buf)) == nullptr) return "?";
  return std::string(buf) + ":" + std::to_string(ntohs(addr.sin_port));
}

std::string local_address(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0)
    fail_errno("getsockname");
  return dotted_quad(addr);
}

std::string first_non_loopback_address() {
  ifaddrs* list = nullptr;
  if (::getifaddrs(&list) < 0) return {};
  std::string found;
  for (const ifaddrs* ifa = list; ifa != nullptr; ifa = ifa->ifa_next) {
    if (ifa->ifa_addr == nullptr || ifa->ifa_addr->sa_family != AF_INET) continue;
    const auto* addr = reinterpret_cast<const sockaddr_in*>(ifa->ifa_addr);
    if (ntohl(addr->sin_addr.s_addr) >> 24 == 127) continue;  // 127.0.0.0/8
    found = dotted_quad(*addr);
    break;
  }
  ::freeifaddrs(list);
  return found;
}

int poll_readable(std::span<const int> fds, int timeout_ms) {
  std::vector<pollfd> pfds;
  pfds.reserve(fds.size());
  for (const int fd : fds) pfds.push_back({fd, POLLIN, 0});
  for (;;) {
    const int n = ::poll(pfds.data(), pfds.size(), timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail_errno("poll");
    }
    if (n == 0) return -1;
    for (std::size_t i = 0; i < pfds.size(); ++i)
      // POLLHUP/POLLERR count as readable: the subsequent read reports the
      // EOF or error precisely instead of the loop spinning.
      if (pfds[i].fd >= 0 && (pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0)
        return static_cast<int>(i);
  }
}

Poller::Poller() : fd_(::epoll_create1(EPOLL_CLOEXEC)) {
  if (fd_ < 0) fail_errno("epoll_create1");
}

Poller::~Poller() {
  if (fd_ >= 0) ::close(fd_);
}

void Poller::add(int fd, std::uint64_t tag, bool edge_triggered) {
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLRDHUP;
  if (edge_triggered) ev.events |= EPOLLET;
  ev.data.u64 = tag;
  if (::epoll_ctl(fd_, EPOLL_CTL_ADD, fd, &ev) < 0) fail_errno("epoll_ctl add");
  ++count_;
}

void Poller::remove(int fd) {
  if (::epoll_ctl(fd_, EPOLL_CTL_DEL, fd, nullptr) < 0) fail_errno("epoll_ctl del");
  --count_;
}

std::vector<std::uint64_t> Poller::wait(int timeout_ms) {
  // 64 ready events per wake is plenty for every loop here; anything beyond
  // stays queued in the kernel and surfaces on the next wait.
  epoll_event events[64];
  for (;;) {
    const int n = ::epoll_wait(fd_, events, 64, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail_errno("epoll_wait");
    }
    std::vector<std::uint64_t> tags;
    tags.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) tags.push_back(events[i].data.u64);
    return tags;
  }
}

EventFd::EventFd() : fd_(::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC)) {
  if (!fd_.valid()) fail_errno("eventfd");
}

void EventFd::signal() {
  const std::uint64_t one = 1;
  // Non-blocking: EAGAIN means the counter is already saturated, which still
  // wakes the waiter — the signal is level-ful, not lossy.
  [[maybe_unused]] const ssize_t n = ::write(fd_.fd(), &one, sizeof(one));
}

void EventFd::drain() {
  std::uint64_t count = 0;
  [[maybe_unused]] const ssize_t n = ::read(fd_.fd(), &count, sizeof(count));
}

}  // namespace d3::rpc
