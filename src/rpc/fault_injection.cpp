#include "rpc/fault_injection.h"

#include <stdexcept>
#include <thread>

#include "rpc/socket_transport.h"

namespace d3::rpc {

FaultInjectionTransport::FaultInjectionTransport(std::shared_ptr<Transport> inner)
    : inner_(std::move(inner)) {
  if (!inner_) throw std::invalid_argument("FaultInjectionTransport: null inner transport");
  // Socket-internal ops (peer handshake legs, replica pushes) never cross the
  // Transport interface; the observer routes them into the same fault plan.
  // The observer throwing (Action::kFail) propagates exactly like the wire
  // call it precedes failing.
  if (auto* socket = dynamic_cast<SocketTransport*>(inner_.get())) {
    socket->set_op_observer([this](MsgKind kind, const std::string& node) {
      switch (kind) {
        case MsgKind::kPeerListen:
          enter(Op::kPeerListen, node);
          break;
        case MsgKind::kConnectPeer:
          enter(Op::kConnectPeer, node);
          break;
        case MsgKind::kPeerHello:
          enter(Op::kPeerHello, node);
          break;
        case MsgKind::kPutReplica:
          enter(Op::kPutReplica, node);
          break;
        default:
          break;  // future observer points count as nothing until mapped
      }
    });
  }
}

void FaultInjectionTransport::set_kill_handler(std::function<void(const std::string&)> handler) {
  std::lock_guard<std::mutex> lock(mutex_);
  kill_ = std::move(handler);
}

void FaultInjectionTransport::schedule(Fault fault) {
  if (fault.nth == 0) throw std::invalid_argument("FaultInjectionTransport: nth is 1-based");
  std::lock_guard<std::mutex> lock(mutex_);
  plan_.push_back(Scheduled{fault, 0, false});
}

std::uint64_t FaultInjectionTransport::op_count(Op op, const std::string& node) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!node.empty()) {
    const auto it = counts_.find({op, node});
    return it == counts_.end() ? 0 : it->second;
  }
  std::uint64_t total = 0;
  for (const auto& [key, count] : counts_)
    if (key.first == op) total += count;
  return total;
}

FaultInjectionTransport::Stats FaultInjectionTransport::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

bool FaultInjectionTransport::enter(Op op, const std::string& node) {
  // Decide every due action under the lock, act on it outside: the kill
  // handler and delays must not serialise other transport traffic.
  std::function<void(const std::string&)> kill;
  std::string kill_target;
  std::chrono::milliseconds delay{0};
  bool duplicate = false;
  bool fail = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.ops;
    ++counts_[{op, node}];
    for (Scheduled& scheduled : plan_) {
      const Fault& fault = scheduled.fault;
      if (scheduled.fired) continue;
      if (fault.op != Op::kAny && fault.op != op) continue;
      if (!fault.node.empty() && fault.node != node) continue;
      if (++scheduled.seen != fault.nth) continue;
      scheduled.fired = true;
      ++stats_.faults_injected;
      switch (fault.action) {
        case Action::kKill:
          if (!kill_)
            throw std::logic_error("FaultInjectionTransport: kKill without a kill handler");
          kill = kill_;
          kill_target = fault.kill_node.empty() ? node : fault.kill_node;
          ++stats_.kills;
          break;
        case Action::kFail:
          fail = true;
          ++stats_.synthetic_failures;
          break;
        case Action::kDelay:
          delay += fault.delay;
          ++stats_.delays;
          break;
        case Action::kDuplicate:
          duplicate = true;
          ++stats_.duplicates;
          break;
      }
    }
  }
  if (delay.count() > 0) std::this_thread::sleep_for(delay);
  if (kill) kill(kill_target);
  if (fail)
    throw ChannelDied(node, /*channel_restored=*/true,
                      "fault injection: scripted state loss on '" + node + "'");
  return duplicate;
}

std::uint64_t FaultInjectionTransport::open_request() {
  // open_request has no per-node target and allocates the id itself; a
  // duplicate here would leak a request, so only kill/fail/delay make sense.
  enter(Op::kBegin, "");
  return inner_->open_request();
}

void FaultInjectionTransport::close_request(std::uint64_t request) noexcept {
  try {
    enter(Op::kEnd, "");
  } catch (...) {
    // Teardown must stay noexcept; a scripted failure here only counts.
  }
  inner_->close_request(request);
}

void FaultInjectionTransport::seed(std::uint64_t request, const std::string& node,
                                   std::uint64_t slot, const dnn::Tensor& tensor) {
  const bool duplicate = enter(Op::kPut, node);
  inner_->seed(request, node, slot, tensor);
  if (duplicate) inner_->seed(request, node, slot, tensor);
}

std::optional<dnn::Tensor> FaultInjectionTransport::send(std::uint64_t request,
                                                         const runtime::MessageRecord& meta,
                                                         std::uint64_t slot,
                                                         const dnn::Tensor& tensor) {
  const bool duplicate = enter(Op::kPut, meta.to_node);
  if (duplicate) inner_->send(request, meta, slot, tensor);
  return inner_->send(request, meta, slot, tensor);
}

bool FaultInjectionTransport::run_layer(std::uint64_t request, const std::string& node,
                                        dnn::LayerId layer) {
  const bool duplicate = enter(Op::kRunLayer, node);
  if (duplicate) inner_->run_layer(request, node, layer);
  return inner_->run_layer(request, node, layer);
}

bool FaultInjectionTransport::run_stack(std::uint64_t request, const std::string& node) {
  const bool duplicate = enter(Op::kRunStack, node);
  if (duplicate) inner_->run_stack(request, node);
  return inner_->run_stack(request, node);
}

dnn::Tensor FaultInjectionTransport::fetch(std::uint64_t request, const std::string& node,
                                           std::uint64_t slot) {
  const bool duplicate = enter(Op::kGet, node);
  if (duplicate) inner_->fetch(request, node, slot);
  return inner_->fetch(request, node, slot);
}

bool FaultInjectionTransport::send_peer(std::uint64_t request,
                                        const runtime::MessageRecord& meta,
                                        std::uint64_t slot) {
  const bool duplicate = enter(Op::kPushPeer, meta.from_node);
  if (duplicate) inner_->send_peer(request, meta, slot);
  return inner_->send_peer(request, meta, slot);
}

bool FaultInjectionTransport::reopen(std::uint64_t request, const std::string& node) {
  const bool duplicate = enter(Op::kBegin, node);
  if (duplicate) inner_->reopen(request, node);
  return inner_->reopen(request, node);
}

void FaultInjectionTransport::open_request_as(std::uint64_t request) {
  // Failover takeover: counts as a kBegin like open_request (it broadcasts
  // kBegin frames), and kBegin's idempotence makes a duplicate harmless.
  const bool duplicate = enter(Op::kBegin, "");
  inner_->open_request_as(request);
  if (duplicate) inner_->open_request_as(request);
}

bool FaultInjectionTransport::replica_push(std::uint64_t request,
                                           const runtime::MessageRecord& meta,
                                           std::uint64_t slot) {
  // The buddy-side kPushPeer round-trip. The inner socket transport reports
  // the replication *store* via the observer (Op::kPutReplica); this entry
  // point is its failover-time consumption.
  const bool duplicate = enter(Op::kPushPeer, meta.from_node);
  if (duplicate) inner_->replica_push(request, meta, slot);
  return inner_->replica_push(request, meta, slot);
}

void FaultInjectionTransport::ping(const std::string& node) {
  const bool duplicate = enter(Op::kPing, node);
  inner_->ping(node);
  if (duplicate) inner_->ping(node);
}

void FaultInjectionTransport::put_tile(std::uint64_t request,
                                       const runtime::MessageRecord& meta, std::size_t tile,
                                       const dnn::Tensor& input) {
  const bool duplicate = enter(Op::kPutTile, inner_->tile_node(tile));
  inner_->put_tile(request, meta, tile, input);
  if (duplicate) inner_->put_tile(request, meta, tile, input);
}

void FaultInjectionTransport::run_tile(std::uint64_t request, std::size_t tile) {
  const bool duplicate = enter(Op::kRunTile, inner_->tile_node(tile));
  inner_->run_tile(request, tile);
  if (duplicate) inner_->run_tile(request, tile);
}

dnn::Tensor FaultInjectionTransport::fetch_tile(std::uint64_t request, std::size_t tile) {
  const bool duplicate = enter(Op::kGetTile, inner_->tile_node(tile));
  if (duplicate) inner_->fetch_tile(request, tile);
  return inner_->fetch_tile(request, tile);
}

}  // namespace d3::rpc
