// Fixed-endianness binary wire format for inter-node communication.
//
// Everything that crosses a process boundary is encoded with these primitives:
// integers are little-endian fixed width, floats are their IEEE-754 bit
// patterns (so NaN payloads, infinities and denormals survive the wire
// bit-exactly — the lossless property the engine asserts end-to-end), strings
// and blobs are length-prefixed. Every decoder is strict: truncated input,
// bad magic numbers, absurd lengths and trailing bytes all raise WireError
// instead of yielding partially-populated objects.
//
// Encoded objects:
//   * tensor    — shape + raw float bits (encode_tensor / decode_tensor)
//   * Envelope  — one framed inter-node message: the engine's MessageRecord
//                 metadata plus the payload bytes (usually an encoded tensor)
//   * weights   — a WeightStore, shipped to remote nodes at configure time
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "dnn/network.h"
#include "dnn/tensor.h"
#include "exec/weights.h"
#include "runtime/message.h"

namespace d3::rpc {

// Any malformed, truncated or oversized wire payload.
class WireError : public std::runtime_error {
 public:
  explicit WireError(const std::string& what) : std::runtime_error("rpc: " + what) {}
};

inline constexpr std::uint32_t kTensorMagic = 0xD3A00001;
inline constexpr std::uint32_t kEnvelopeMagic = 0xD3A00002;
inline constexpr std::uint32_t kWeightsMagic = 0xD3A00003;
inline constexpr std::uint32_t kPlanMagic = 0xD3A00004;  // used by core::plan_io
inline constexpr std::uint32_t kBundleMagic = 0xD3A00006;  // used by core::bundle
inline constexpr std::uint32_t kWeightShardMagic = 0xD3A00007;
inline constexpr std::uint16_t kWireVersion = 1;

// FNV-1a over a byte run: the content-hash primitive shared by the request
// journal's plan stamp, the deployment-bundle checksum, and the
// weights-elided kConfig identity. Not cryptographic — it detects version
// skew and corruption, not tampering.
inline std::uint64_t fnv1a(std::span<const std::uint8_t> bytes) {
  std::uint64_t hash = 1469598103934665603ull;
  for (const std::uint8_t b : bytes) {
    hash ^= b;
    hash *= 1099511628211ull;
  }
  return hash;
}

// Decoder sanity caps: a corrupted length field fails loudly instead of
// driving a multi-gigabyte allocation.
inline constexpr std::size_t kMaxStringBytes = std::size_t{1} << 16;
inline constexpr std::int64_t kMaxTensorDim = std::int64_t{1} << 20;
inline constexpr std::int64_t kMaxTensorElements = std::int64_t{1} << 28;  // 1 GiB of floats
inline constexpr std::uint64_t kMaxBlobBytes = std::uint64_t{1} << 31;

class WireWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f32(float v);
  // Length-prefixed (u32) string; throws WireError above kMaxStringBytes.
  void str(std::string_view s);
  // Length-prefixed (u64) byte blob.
  void blob(std::span<const std::uint8_t> bytes);
  // Count-prefixed (u64) float array, element-wise fixed-endian.
  void f32_array(std::span<const float> values);
  // Raw float bits without a length prefix (count known from context).
  void f32_raw(const float* values, std::size_t count);

  std::size_t size() const { return buf_.size(); }
  const std::vector<std::uint8_t>& buffer() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

class WireReader {
 public:
  explicit WireReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  float f32();
  std::string str();
  std::vector<std::uint8_t> blob();
  std::vector<float> f32_array();
  void f32_raw(float* out, std::size_t count);

  std::size_t remaining() const { return bytes_.size() - pos_; }
  // The rest of the buffer as a span (consumes it).
  std::span<const std::uint8_t> rest();
  // Throws WireError if any bytes remain: decoders never accept trailers.
  void expect_end(const char* what) const;

 private:
  // Advances past `n` bytes, throwing WireError("<what>: truncated") if fewer
  // remain. Every read funnels through here — there is no way to read past the
  // end of the buffer.
  const std::uint8_t* need(std::size_t n, const char* what);

  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

// --- Tensor ------------------------------------------------------------------

void encode_tensor(WireWriter& w, const dnn::Tensor& tensor);
dnn::Tensor decode_tensor(WireReader& r);
std::vector<std::uint8_t> encode_tensor(const dnn::Tensor& tensor);
// Strict standalone decode: the buffer must contain exactly one tensor.
dnn::Tensor decode_tensor(std::span<const std::uint8_t> bytes);

// --- Envelope ----------------------------------------------------------------

// One framed inter-node message: the engine's transcript metadata plus the
// payload bytes (an encoded tensor for data messages; empty for control).
struct Envelope {
  runtime::MessageRecord meta;
  std::vector<std::uint8_t> payload;
};

void encode_envelope(WireWriter& w, const Envelope& envelope);
Envelope decode_envelope(WireReader& r);
std::vector<std::uint8_t> encode_envelope(const Envelope& envelope);
Envelope decode_envelope(std::span<const std::uint8_t> bytes);

// --- Weights -----------------------------------------------------------------

// Ships every layer's parameters. decode validates the store against `net`
// (layer count and per-layer parameter sizes), so a worker never runs kernels
// over short weight buffers.
std::vector<std::uint8_t> encode_weights(const exec::WeightStore& weights,
                                         const dnn::Network& net);
exec::WeightStore decode_weights(std::span<const std::uint8_t> bytes,
                                 const dnn::Network& net);

// --- Weight shards -----------------------------------------------------------

// A per-tier slice of the store: only the layers `keep` marks carry their
// parameters; the rest are encoded as absent (one flag byte, no arrays). A
// parameterless layer that `keep` marks is still "present" — presence follows
// the plan, not the parameter count, so a shard/plan disagreement is always
// detectable. This is what a d3c deployment bundle embeds: O(tier) bytes
// instead of the O(model) kConfig weights blob.
std::vector<std::uint8_t> encode_weight_shard(const exec::WeightStore& weights,
                                              const dnn::Network& net,
                                              const std::vector<bool>& keep);

struct WeightShard {
  // Full-sized store; layers absent from the shard hold empty parameter
  // vectors (running one would fail loudly in the kernels).
  exec::WeightStore weights;
  // Per-layer presence flags, as encoded — checked against the plan's
  // node-layer set at boot.
  std::vector<bool> present;
};

// Strict decode: present layers are validated against `net`'s per-layer
// parameter sizes exactly like decode_weights; truncation, bad magic and
// trailing bytes raise WireError.
WeightShard decode_weight_shard(std::span<const std::uint8_t> bytes,
                                const dnn::Network& net);

}  // namespace d3::rpc
