// POSIX TCP plumbing for the socket transport: RAII file descriptors,
// localhost listen/accept/connect helpers, and length-prefixed frame I/O.
//
// A frame is the unit of the coordinator <-> worker protocol:
//
//   u32 magic | u8 kind | u64 correlation id | u64 body length | body bytes
//
// The correlation id lets one channel carry several outstanding request
// frames: the coordinator stamps each request with a fresh id, the worker
// echoes it verbatim in the reply, and the transport matches replies to its
// per-channel pending-op queue (replies arrive in request order — TCP plus the
// worker's serial serve loop — so the echo is a cross-check, not a reorder
// mechanism). read_frame() is strict — EOF mid-frame, a bad magic or an
// oversized length raise SocketError, so a desynchronised stream can never be
// misparsed as a valid message.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace d3::rpc {

class SocketError : public std::runtime_error {
 public:
  explicit SocketError(const std::string& what) : std::runtime_error("rpc: " + what) {}
};

// Bumped (…0F -> …1F) when the correlation-id field was added to the header:
// a stale binary on either end fails loudly on the first frame instead of
// misparsing the stream.
inline constexpr std::uint32_t kFrameMagic = 0xD3A0001F;
inline constexpr std::uint64_t kMaxFrameBytes = std::uint64_t{1} << 31;

// Coordinator -> worker requests, worker -> coordinator replies, and the
// worker <-> worker peer-channel frames (docs/PROTOCOL.md is the full spec).
enum class MsgKind : std::uint8_t {
  // Coordinator -> worker requests.
  kConfig = 1,       // model name + weights + plan + options: makes the node live
  kBegin = 2,        // open per-request slot state
  kPut = 3,          // deliver an Envelope into a slot
  kRunLayer = 4,     // execute one layer from the node's slots
  kRunStack = 5,     // execute the VSM fused-tile stack
  kGet = 6,          // fetch a slot's tensor back
  kEnd = 7,          // drop per-request state
  kShutdown = 8,     // acknowledge and exit the serve loop
  kPeerListen = 9,   // open (or report) the node's peer listener; kOk body = port
  kConnectPeer = 10, // dial a peer node's listener and keep the channel
  kPushPeer = 11,    // push one of this node's slots directly to a peer node
  kPutTile = 12,     // deliver one VSM tile input (edge fan-out worker)
  kRunTile = 13,     // run the fused stack over one delivered tile
  kGetTile = 14,     // fetch one computed tile output back
  kPutReplica = 15,  // deliver an Envelope into a slot as a buddy *replica*:
                     // stored verbatim even though the envelope is addressed
                     // to the real consumer, so a failed-over coordinator can
                     // re-deliver it peer-to-peer without re-materialising
  kPing = 16,        // liveness probe; the node answers kPong immediately
  kJournalSync = 17, // standby -> active beacon: pull the request journal;
                     // kOk body = u64 fencing epoch + blob journal file bytes
  // Worker -> worker peer-channel frames (never seen by the coordinator).
  kPeerHello = 32,   // first frame on a dialled peer channel: sender's node name
  kPeerPut = 33,     // a pushed slot tensor: request + slot + Envelope
  // Replies.
  kOk = 64,
  kTensor = 65,   // body: one encoded tensor
  kError = 66,    // body: wire string with the failure message
  kPeerOk = 67,   // peer-channel acknowledgement (hello accepted / put stored)
  kErrorState = 68,  // body: node-name string + message string — the named
                     // node has no per-request state for this request (a fresh
                     // worker incarnation after a death); recoverable by
                     // re-begin + re-seed, unlike a generic kError
  kPong = 69,     // heartbeat reply to kPing (empty body from a worker; the
                  // coordinator beacon answers with a u64 fencing-epoch body)
  kFenced = 70,   // body: u64 current max epoch — the requesting coordinator's
                  // fencing epoch is stale (a successor already configured this
                  // worker); the verb was rejected before any state mutation
  kBundleMismatch = 71,  // body: u64 the weights hash this worker holds (0 =
                         // not configured) — a weights-elided kConfig named a
                         // different hash, so coordinator and worker disagree
                         // about the deployed model version; rejected before
                         // any state mutation
};

// RAII owner of a socket file descriptor.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void close();

 private:
  int fd_ = -1;
};

// Binds and listens on 127.0.0.1:`port` (0 = ephemeral); `port` is updated to
// the bound port. Throws SocketError on failure.
Socket tcp_listen(std::uint16_t& port);

// Binds and listens on `host`:`port` (IPv4 dotted quad; "0.0.0.0" for every
// interface). `port` is updated to the bound port.
Socket tcp_listen_on(const std::string& host, std::uint16_t& port);

// Dotted-quad IPv4 address of a connected socket's remote end (getpeername) —
// how *this* process reaches the peer, which is what a third party on the same
// network should dial to reach it too (the peer-handshake advertisement).
std::string peer_address(int fd);

// Dotted-quad IPv4 address of a connected socket's local end (getsockname) —
// the interface the peer reached this process on, so listeners that must be
// reachable by the same route (a worker's peer listener) bind to it.
std::string local_address(int fd);

// First non-loopback IPv4 address of this host ("" when the host has none) —
// lets off-host-shaped tests bind real interfaces and skip cleanly otherwise.
std::string first_non_loopback_address();

// Best-effort "addr:port" of a connected socket's remote end for error
// messages; "?" when the socket is closed or was never connected. Never
// throws — it exists to annotate failures, not to cause new ones.
std::string describe_peer(int fd) noexcept;

// Accepts one connection, polling up to `timeout_ms`. `abort_check` (optional)
// is polled between waits; returning true aborts the accept (used to notice a
// worker child that died before connecting). Throws SocketError on timeout,
// abort, or OS failure.
Socket tcp_accept(const Socket& listener, int timeout_ms, bool (*abort_check)(void*) = nullptr,
                  void* abort_arg = nullptr);

// Connects to host:port (IPv4 dotted quad, e.g. "127.0.0.1").
Socket tcp_connect(const std::string& host, std::uint16_t port);

struct Frame {
  MsgKind kind = MsgKind::kOk;
  std::vector<std::uint8_t> body;
  // Correlation id echoed from request to reply (0 on channels that never
  // pipeline: peer channels, handshakes). Declared last so the pre-existing
  // Frame{kind, body} aggregate initializers stay valid.
  std::uint64_t corr = 0;
};

// Writes one frame, looping over partial writes. Throws SocketError.
void write_frame(int fd, MsgKind kind, std::span<const std::uint8_t> body,
                 std::uint64_t corr = 0);

// Appends one encoded frame (header + body) to `out` without writing it — the
// transport's per-channel outbox batches a burst of independent requests into
// one write_bytes() flush (a writev-style pipelined send).
void encode_frame(std::vector<std::uint8_t>& out, MsgKind kind,
                  std::span<const std::uint8_t> body, std::uint64_t corr);

// Writes a raw byte run (an outbox of encoded frames), looping over partial
// writes. Throws SocketError.
void write_bytes(int fd, std::span<const std::uint8_t> bytes);

// Reads one frame. Throws SocketError on any malformation, including EOF
// mid-frame.
Frame read_frame(int fd);

// Like read_frame, but a clean EOF before the first byte returns false —
// the peer hung up between messages (normal worker shutdown).
bool read_frame_or_eof(int fd, Frame& out);

// Polls `fds` for readability, returning the index of the first readable fd,
// or -1 on timeout (timeout_ms < 0 waits forever). Throws SocketError on OS
// failure. Entries with fd < 0 are skipped. The peer-push acknowledgement wait
// (a transient two-fd set) is built on this; the long-lived loops use Poller.
int poll_readable(std::span<const int> fds, int timeout_ms);

// Readiness multiplexer over a long-lived, mutating fd set: an epoll(7)
// instance owning its registrations. This is the worker serve loop's poll set
// generalized — the worker registers its coordinator connection, peer listener
// and inbound peer channels; the serving reactor registers its wake-up eventfd
// and the transport's channels — so one thread can sleep on "anything
// happened" and dispatch by tag instead of rebuilding a pollfd array per
// iteration. Level-triggered by default; `edge_triggered` registrations fire
// once per readability transition (used for hang-up sentinels that must not
// spin an idle loop).
class Poller {
 public:
  Poller();
  ~Poller();
  Poller(Poller&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Poller& operator=(Poller&&) = delete;
  Poller(const Poller&) = delete;
  Poller& operator=(const Poller&) = delete;

  // Registers `fd` for readability (POLLIN | POLLRDHUP); `tag` comes back from
  // wait(). Re-registering a live fd throws.
  void add(int fd, std::uint64_t tag, bool edge_triggered = false);
  void remove(int fd);
  std::size_t size() const { return count_; }

  // Blocks up to `timeout_ms` (< 0 = forever) and returns the tags of every
  // ready registration; empty = timeout.
  std::vector<std::uint64_t> wait(int timeout_ms);

 private:
  int fd_ = -1;
  std::size_t count_ = 0;
};

// Wake-up channel for a Poller-driven loop: an eventfd(2) another thread
// signals to interrupt the loop's wait (new work queued, shutdown requested).
// signal() is async-safe and never blocks; drain() clears the pending count.
class EventFd {
 public:
  EventFd();
  int fd() const { return fd_.fd(); }
  void signal();
  void drain();

 private:
  Socket fd_;
};

}  // namespace d3::rpc
