#include "rpc/transport.h"

#include "rpc/wire.h"

namespace d3::rpc {

void Transport::seed(std::uint64_t, const std::string&, std::uint64_t, const dnn::Tensor&) {}

bool Transport::run_layer(std::uint64_t, const std::string&, dnn::LayerId) { return false; }

bool Transport::run_stack(std::uint64_t, const std::string&) { return false; }

dnn::Tensor Transport::fetch(std::uint64_t, const std::string& node, std::uint64_t) {
  throw TransportError("fetch: node '" + node + "' is not remote on transport '" + name() +
                       "'");
}

namespace {

// An op that was completed synchronously at issue time (the base-class
// issue_* forms, which just run the blocking verb).
class ReadyOp final : public Transport::AsyncOp {
 public:
  bool poll() override { return true; }
  void wait() override {}
};

Transport::OpHandle ready_op() {
  return Transport::OpHandle(std::make_shared<ReadyOp>());
}

}  // namespace

// The issue_* defaults dispatch the blocking verb through `this`, so a
// decorator (FaultInjectionTransport) that overrides only the blocking verbs
// still observes — and may fault — every issued op.
Transport::OpHandle Transport::issue_seed(std::uint64_t request, const std::string& node,
                                          std::uint64_t slot, const dnn::Tensor& tensor) {
  seed(request, node, slot, tensor);
  return ready_op();
}

Transport::OpHandle Transport::issue_send(std::uint64_t request,
                                          const runtime::MessageRecord& meta,
                                          std::uint64_t slot, const dnn::Tensor& tensor) {
  OpHandle handle = ready_op();
  handle.tensor() = send(request, meta, slot, tensor);
  return handle;
}

Transport::OpHandle Transport::issue_run_layer(std::uint64_t request, const std::string& node,
                                               dnn::LayerId layer) {
  return run_layer(request, node, layer) ? ready_op() : OpHandle{};
}

Transport::OpHandle Transport::issue_run_stack(std::uint64_t request,
                                               const std::string& node) {
  return run_stack(request, node) ? ready_op() : OpHandle{};
}

Transport::OpHandle Transport::issue_fetch(std::uint64_t request, const std::string& node,
                                           std::uint64_t slot) {
  OpHandle handle = ready_op();
  handle.tensor() = fetch(request, node, slot);
  return handle;
}

std::uint64_t Transport::issue_open_request(std::vector<OpHandle>& ops) {
  (void)ops;
  return open_request();
}

bool Transport::send_peer(std::uint64_t, const runtime::MessageRecord&, std::uint64_t) {
  return false;
}

bool Transport::reopen(std::uint64_t, const std::string&) { return false; }

void Transport::open_request_as(std::uint64_t) {
  throw TransportError("open_request_as: transport '" + name() +
                       "' holds no per-node request state to resume");
}

bool Transport::replica_push(std::uint64_t, const runtime::MessageRecord&, std::uint64_t) {
  return false;
}

void Transport::ping(const std::string&) {}

std::vector<std::string> Transport::heartbeat_targets() { return {}; }

int Transport::heartbeat_due_ms() { return -1; }

void Transport::heartbeat_poll() {
  // `this` dispatches the virtuals, so a decorator (FaultInjectionTransport)
  // that overrides ping() observes every probe this driver issues.
  for (const std::string& node : heartbeat_targets()) ping(node);
}

std::string Transport::tile_node(std::size_t) const { return {}; }

void Transport::put_tile(std::uint64_t, const runtime::MessageRecord&, std::size_t,
                         const dnn::Tensor&) {
  throw TransportError("put_tile: transport '" + name() + "' has no tile workers");
}

void Transport::run_tile(std::uint64_t, std::size_t) {
  throw TransportError("run_tile: transport '" + name() + "' has no tile workers");
}

dnn::Tensor Transport::fetch_tile(std::uint64_t, std::size_t) {
  throw TransportError("fetch_tile: transport '" + name() + "' has no tile workers");
}

std::optional<dnn::Tensor> SerializingLoopback::send(std::uint64_t,
                                                     const runtime::MessageRecord& meta,
                                                     std::uint64_t, const dnn::Tensor& tensor) {
  // The full wire path: tensor -> envelope -> framed bytes -> envelope ->
  // tensor. The decoded copy is what the destination node computes on.
  Envelope env{meta, encode_tensor(tensor)};
  const std::vector<std::uint8_t> wire = encode_envelope(env);
  Envelope back = decode_envelope(wire);
  if (back.meta.seq != meta.seq || back.meta.bytes != meta.bytes)
    throw TransportError("loopback: envelope metadata did not survive the wire");
  messages_.fetch_add(1, std::memory_order_relaxed);
  payload_bytes_.fetch_add(env.payload.size(), std::memory_order_relaxed);
  wire_bytes_.fetch_add(wire.size(), std::memory_order_relaxed);
  return decode_tensor(back.payload);
}

}  // namespace d3::rpc
