#include "baselines/dads.h"

#include "graph/mincut.h"

namespace d3::baselines {

using core::Assignment;
using core::Tier;

DadsResult dads(const core::PartitionProblem& problem) {
  problem.validate();
  const std::size_t n = problem.size();  // includes v0, which stays on the device

  // Flow nodes: 0..n-1 mirror the DAG vertices (v0 unused), n = source (edge
  // side), n+1 = sink (cloud side).
  graph::FlowNetwork flow(n + 2);
  const std::size_t s = n;
  const std::size_t t = n + 1;

  for (graph::VertexId v = 1; v < n; ++v) {
    double cloud_cost = problem.vertex_time[v].at(Tier::kCloud);
    // Raw-input transfer: vertices fed by v0 additionally pay the edge->cloud
    // hop for the raw frame when they are placed in the cloud.
    if (problem.dag.has_edge(0, v))
      cloud_cost +=
          problem.transfer_seconds(problem.out_bytes[0], Tier::kEdge, Tier::kCloud);
    flow.add_edge(s, v, cloud_cost);
    flow.add_edge(v, t, problem.vertex_time[v].at(Tier::kEdge));
  }
  for (const auto& [u, v] : problem.dag.edges()) {
    if (u == 0) continue;  // raw input handled above
    flow.add_edge(u, v,
                  problem.transfer_seconds(problem.out_bytes[u], Tier::kEdge, Tier::kCloud));
    flow.add_edge(v, u, graph::FlowNetwork::kInfinity);
  }

  DadsResult result;
  result.min_cut_value = flow.max_flow(s, t);

  result.assignment.tier.assign(n, Tier::kCloud);
  result.assignment.tier[0] = Tier::kDevice;
  for (graph::VertexId v = 1; v < n; ++v)
    result.assignment.tier[v] = flow.source_side()[v] ? Tier::kEdge : Tier::kCloud;

  result.total_latency_seconds = total_latency(problem, result.assignment);
  return result;
}

}  // namespace d3::baselines
