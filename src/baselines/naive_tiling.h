// Padding-oblivious fused-tile partition, modelling the DeepThings-style scheme
// the paper criticises (§III-F: "DeepThings does not consider input feature maps
// with paddings, leading to the precision loss").
//
// Tile coordinates are back-propagated with Eq. (4) only — the padding offset of
// Eq. (5) is ignored — and each edge node runs its tile as a standalone image,
// applying the layer padding at *all* tile borders. Interior tile borders thus
// see zeros where the true feature map has neighbour values: for any stack with
// padding > 0 the gathered output differs from the serial reference, while for
// valid (padding-free) stacks it is exact. Both facts are asserted by tests;
// VSM (core/vsm.h) is the lossless fix.
#pragma once

#include <span>
#include <vector>

#include "dnn/network.h"
#include "dnn/tensor.h"
#include "exec/ops.h"
#include "exec/weights.h"

namespace d3::baselines {

struct NaiveTilePlan {
  std::vector<dnn::LayerId> stack;
  int grid_rows = 0;
  int grid_cols = 0;
  struct TilePlan {
    std::vector<exec::Region> input_regions;  // per layer, padding-oblivious
    exec::Region output_region;
  };
  std::vector<TilePlan> tiles;
  std::vector<dnn::Shape> input_shapes;
  dnn::Shape output_shape;
};

// Throws std::invalid_argument when a tile crop gets clamped so hard at the map
// border that the standalone execution cannot produce its planned extent.
NaiveTilePlan make_naive_tile_plan(const dnn::Network& net,
                                   std::span<const dnn::LayerId> stack, int grid_rows,
                                   int grid_cols);

// Scatter/standalone-compute/gather with the naive plan.
dnn::Tensor run_naive_tiles(const dnn::Network& net, const exec::WeightStore& weights,
                            const dnn::Tensor& stack_input, const NaiveTilePlan& plan);

}  // namespace d3::baselines
