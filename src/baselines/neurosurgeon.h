// Neurosurgeon baseline (Kang et al., ASPLOS'17): splits a *chain-topology* DNN
// at one layer boundary between the mobile device and the cloud, minimising
// total latency (prefix on device + uplink transfer + suffix on cloud). The
// paper's comparison (Fig. 10) notes it is "not applicable for ResNet-18,
// Darknet-53 and Inception-v4, which are of DAG topology" — reproduced here by
// returning std::nullopt for non-chain graphs.
#pragma once

#include <optional>

#include "core/partition.h"

namespace d3::baselines {

struct NeurosurgeonResult {
  core::Assignment assignment;
  // Vertices [1, split] run on the device; (split, n] on the cloud. split == 0
  // means everything offloaded.
  graph::VertexId split_vertex = 0;
  double total_latency_seconds = 0;
};

// std::nullopt when the DAG is not a chain.
std::optional<NeurosurgeonResult> neurosurgeon(const core::PartitionProblem& problem);

}  // namespace d3::baselines
