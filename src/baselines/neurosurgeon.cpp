#include "baselines/neurosurgeon.h"

#include <limits>

namespace d3::baselines {

using core::Assignment;
using core::Tier;

std::optional<NeurosurgeonResult> neurosurgeon(const core::PartitionProblem& problem) {
  problem.validate();
  if (!problem.dag.is_chain()) return std::nullopt;

  // Chain order: v0 -> v1 -> ... -> vn by construction of Network::to_dag, but
  // derive it from the graph to stay generic.
  const std::vector<graph::VertexId> order = problem.dag.topological_order();

  NeurosurgeonResult best;
  best.total_latency_seconds = std::numeric_limits<double>::infinity();

  // Split after position s (0 = offload everything; order.size()-1 = device-only).
  for (std::size_t s = 0; s + 1 <= order.size(); ++s) {
    Assignment a;
    a.tier.assign(problem.size(), Tier::kCloud);
    for (std::size_t i = 0; i <= s; ++i) a.tier[order[i]] = Tier::kDevice;
    const double theta = total_latency(problem, a);
    if (theta < best.total_latency_seconds) {
      best.total_latency_seconds = theta;
      best.assignment = a;
      best.split_vertex = order[s];
    }
  }
  return best;
}

}  // namespace d3::baselines
