#include "baselines/naive_tiling.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "exec/ops.h"

namespace d3::baselines {

namespace {

// Eq. (4) without the Eq. (5) padding offset: the padding-oblivious mapping.
exec::Region naive_rtc(const dnn::NetworkLayer& layer, const dnn::Shape& input_shape,
                       const exec::Region& out) {
  switch (layer.spec.kind) {
    case dnn::LayerKind::kReLU:
    case dnn::LayerKind::kBatchNorm:
      return out;
    case dnn::LayerKind::kConv:
    case dnn::LayerKind::kMaxPool:
    case dnn::LayerKind::kAvgPool: {
      const dnn::Window& w = layer.spec.window;
      exec::Region in;
      in.x0 = std::max(0, w.stride_w * out.x0);
      in.y0 = std::max(0, w.stride_h * out.y0);
      in.x1 = std::min(input_shape.w, w.stride_w * (out.x1 - 1) + w.kernel_w);
      in.y1 = std::min(input_shape.h, w.stride_h * (out.y1 - 1) + w.kernel_h);
      if (in.x1 <= in.x0 || in.y1 <= in.y0)
        throw std::invalid_argument("naive tiling: degenerate region at '" +
                                    layer.spec.name + "'");
      return in;
    }
    default:
      throw std::invalid_argument("naive tiling: layer '" + layer.spec.name +
                                  "' is not tileable");
  }
}

dnn::Tensor crop_tensor(const dnn::Tensor& full, const exec::Region& region) {
  dnn::Tensor out(dnn::Shape{full.shape().c, region.height(), region.width()});
  for (int c = 0; c < full.shape().c; ++c)
    for (int y = region.y0; y < region.y1; ++y)
      for (int x = region.x0; x < region.x1; ++x)
        out.at(c, y - region.y0, x - region.x0) = full.at(c, y, x);
  return out;
}

// Top-left window of a tensor.
dnn::Tensor crop_top_left(const dnn::Tensor& t, int h, int w, const std::string& layer) {
  if (t.shape().h < h || t.shape().w < w)
    throw std::invalid_argument("naive tiling: standalone output smaller than planned at '" +
                                layer + "' (border clamping)");
  if (t.shape().h == h && t.shape().w == w) return t;
  dnn::Tensor out(dnn::Shape{t.shape().c, h, w});
  for (int c = 0; c < t.shape().c; ++c)
    for (int y = 0; y < h; ++y)
      for (int x = 0; x < w; ++x) out.at(c, y, x) = t.at(c, y, x);
  return out;
}

}  // namespace

NaiveTilePlan make_naive_tile_plan(const dnn::Network& net,
                                   std::span<const dnn::LayerId> stack, int grid_rows,
                                   int grid_cols) {
  if (stack.empty()) throw std::invalid_argument("naive tiling: empty stack");
  NaiveTilePlan plan;
  plan.stack.assign(stack.begin(), stack.end());
  plan.grid_rows = grid_rows;
  plan.grid_cols = grid_cols;
  for (const dnn::LayerId id : stack) {
    if (net.layer(id).inputs.size() != 1)
      throw std::invalid_argument("naive tiling: stack layer is not single-input");
    plan.input_shapes.push_back(net.input_shapes(id)[0]);
  }
  plan.output_shape = net.layer(stack.back()).output_shape;

  const int out_h = plan.output_shape.h;
  const int out_w = plan.output_shape.w;
  if (grid_rows < 1 || grid_cols < 1 || grid_rows > out_h || grid_cols > out_w)
    throw std::invalid_argument("naive tiling: grid does not fit output");

  for (int a = 0; a < grid_rows; ++a) {
    for (int b = 0; b < grid_cols; ++b) {
      NaiveTilePlan::TilePlan tile;
      tile.output_region = exec::Region{
          b * out_w / grid_cols, a * out_h / grid_rows,
          (b + 1) * out_w / grid_cols, (a + 1) * out_h / grid_rows};
      tile.input_regions.resize(stack.size());
      exec::Region region = tile.output_region;
      for (std::size_t j = stack.size(); j-- > 0;) {
        region = naive_rtc(net.layer(stack[j]), plan.input_shapes[j], region);
        tile.input_regions[j] = region;
      }
      plan.tiles.push_back(std::move(tile));
    }
  }
  return plan;
}

dnn::Tensor run_naive_tiles(const dnn::Network& net, const exec::WeightStore& weights,
                            const dnn::Tensor& stack_input, const NaiveTilePlan& plan) {
  if (!(stack_input.shape() == plan.input_shapes.front()))
    throw std::invalid_argument("run_naive_tiles: input shape mismatch");

  dnn::Tensor output(plan.output_shape);
  for (const NaiveTilePlan::TilePlan& tile : plan.tiles) {
    // Standalone execution: the node treats its crop as a complete image.
    dnn::Tensor local = crop_tensor(stack_input, tile.input_regions.front());
    for (std::size_t j = 0; j < plan.stack.size(); ++j) {
      const dnn::LayerId id = plan.stack[j];
      const dnn::LayerSpec& spec = net.layer(id).spec;
      switch (spec.kind) {
        case dnn::LayerKind::kConv:
          local = exec::conv2d(local, spec, weights.layer(id));
          break;
        case dnn::LayerKind::kMaxPool:
        case dnn::LayerKind::kAvgPool:
          local = exec::pool2d(local, spec);
          break;
        case dnn::LayerKind::kReLU:
          local = exec::relu(std::move(local));
          break;
        case dnn::LayerKind::kBatchNorm:
          local = exec::batch_norm(std::move(local), weights.layer(id));
          break;
        default:
          throw std::logic_error("run_naive_tiles: non-tileable layer");
      }
      // Keep only the planned extent for the next layer (local padding can
      // produce extra rows/columns).
      const exec::Region& planned = j + 1 < plan.stack.size() ? tile.input_regions[j + 1]
                                                              : tile.output_region;
      local = crop_top_left(local, planned.height(), planned.width(), spec.name);
    }
    const exec::Region& region = tile.output_region;
    for (int c = 0; c < output.shape().c; ++c)
      for (int y = region.y0; y < region.y1; ++y)
        for (int x = region.x0; x < region.x1; ++x)
          output.at(c, y, x) = local.at(c, y - region.y0, x - region.x0);
  }
  return output;
}

}  // namespace d3::baselines
