// DADS baseline (Hu et al., INFOCOM'19): optimal two-way split of a DAG DNN
// between an edge node and a cloud server via s-t min-cut. The device always
// forwards the raw input to the edge over the LAN first (DADS's deployment
// model); when the cut offloads everything, the raw input continues edge->cloud.
//
// Flow-network construction (per vertex v, for source s = edge side and sink
// t = cloud side):
//   cap(v -> t) = t_e(v)            paid when v runs on the edge
//   cap(s -> v) = t_c(v) [+ raw transfer for input-adjacent vertices]
//                                   paid when v runs in the cloud
//   cap(u -> v) = transfer(u out)   paid when the link crosses edge -> cloud
//   cap(v -> u) = infinity          forbids backward cloud -> edge dataflow
//                                   (DADS "cannot generalise beyond two parts")
#pragma once

#include "core/partition.h"

namespace d3::baselines {

struct DadsResult {
  core::Assignment assignment;  // every vertex kEdge or kCloud; v0 kDevice
  double min_cut_value = 0;     // objective of the cut (edge+cloud compute + crossing transfer)
  double total_latency_seconds = 0;  // Θ including the device->edge input hop
};

DadsResult dads(const core::PartitionProblem& problem);

}  // namespace d3::baselines
