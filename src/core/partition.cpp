#include "core/partition.h"

#include <limits>
#include <set>
#include <stdexcept>

#include "profile/hardware_model.h"

namespace d3::core {

double PartitionProblem::bandwidth_mbps(Tier a, Tier b) const {
  if (a == b) return std::numeric_limits<double>::infinity();
  const int lo = std::min(index(a), index(b));
  const int hi = std::max(index(a), index(b));
  if (lo == index(Tier::kDevice) && hi == index(Tier::kEdge)) return condition.device_edge_mbps;
  if (lo == index(Tier::kEdge) && hi == index(Tier::kCloud)) return condition.edge_cloud_mbps;
  return condition.device_cloud_mbps;
}

double PartitionProblem::transfer_seconds(std::int64_t bytes, Tier a, Tier b) const {
  if (a == b) return 0.0;  // intra-tier transmission is infinitesimal (§III-A)
  return condition.transfer_seconds(bytes, bandwidth_mbps(a, b));
}

void PartitionProblem::validate() const {
  if (dag.size() == 0) throw std::invalid_argument("PartitionProblem: empty dag");
  if (vertex_time.size() != dag.size() || out_bytes.size() != dag.size() ||
      in_bytes.size() != dag.size())
    throw std::invalid_argument("PartitionProblem: vector sizes do not match dag");
  if (!dag.predecessors(0).empty())
    throw std::invalid_argument("PartitionProblem: v0 must have no predecessors");
  for (const double t : vertex_time[0].seconds)
    if (t != 0.0) throw std::invalid_argument("PartitionProblem: v0 must cost nothing");
}

double total_latency(const PartitionProblem& problem, const Assignment& assignment) {
  if (assignment.tier.size() != problem.size())
    throw std::invalid_argument("total_latency: assignment size mismatch");
  double theta = 0.0;
  for (graph::VertexId v = 0; v < problem.size(); ++v)
    theta += problem.vertex_time[v].at(assignment.tier[v]);
  for (const auto& [u, v] : problem.dag.edges())
    theta += problem.transfer_seconds(problem.out_bytes[u], assignment.tier[u],
                                      assignment.tier[v]);
  return theta;
}

bool respects_precedence(const PartitionProblem& problem, const Assignment& assignment) {
  if (assignment.tier.size() != problem.size()) return false;
  if (assignment.tier[0] != Tier::kDevice) return false;
  for (graph::VertexId v = 1; v < problem.size(); ++v) {
    const auto& preds = problem.dag.predecessors(v);
    if (preds.empty()) continue;
    // max under ≻ = most device-ward predecessor tier.
    Tier most_deviceward = Tier::kCloud;
    for (const graph::VertexId p : preds)
      if (before(assignment.tier[p], most_deviceward)) most_deviceward = assignment.tier[p];
    if (before(assignment.tier[v], most_deviceward)) return false;
  }
  return true;
}

BoundaryTraffic boundary_traffic(const PartitionProblem& problem, const Assignment& assignment) {
  BoundaryTraffic traffic;
  for (graph::VertexId u = 0; u < problem.size(); ++u) {
    std::set<Tier> destinations;
    for (const graph::VertexId v : problem.dag.successors(u)) {
      const Tier dst = assignment.tier[v];
      if (dst != assignment.tier[u]) destinations.insert(dst);
    }
    for (const Tier dst : destinations) {
      const Tier src = assignment.tier[u];
      const int lo = std::min(index(src), index(dst));
      const int hi = std::max(index(src), index(dst));
      if (lo == 0 && hi == 1) traffic.device_edge_bytes += problem.out_bytes[u];
      else if (lo == 1 && hi == 2) traffic.edge_cloud_bytes += problem.out_bytes[u];
      else traffic.device_cloud_bytes += problem.out_bytes[u];
    }
  }
  return traffic;
}

TierLoad tier_load(const PartitionProblem& problem, const Assignment& assignment) {
  TierLoad load;
  for (graph::VertexId v = 0; v < problem.size(); ++v)
    load.seconds[static_cast<std::size_t>(index(assignment.tier[v]))] +=
        problem.vertex_time[v].at(assignment.tier[v]);
  return load;
}

Assignment uniform_assignment(const PartitionProblem& problem, Tier tier) {
  Assignment a;
  a.tier.assign(problem.size(), tier);
  a.tier[0] = Tier::kDevice;
  return a;
}

namespace {

PartitionProblem make_problem_shared(const dnn::Network& net,
                                     const net::NetworkCondition& condition) {
  PartitionProblem p;
  p.dag = net.to_dag();
  p.condition = condition;
  p.vertex_time.assign(p.dag.size(), TierTimes{});
  p.out_bytes.assign(p.dag.size(), 0);
  p.in_bytes.assign(p.dag.size(), 0);
  p.out_bytes[0] = net.input_shape().bytes();
  for (dnn::LayerId id = 0; id < net.num_layers(); ++id) {
    const graph::VertexId v = dnn::Network::vertex_of(id);
    p.out_bytes[v] = net.lambda_out_bytes(id);
    p.in_bytes[v] = net.lambda_in_bytes(id);
  }
  return p;
}

}  // namespace

PartitionProblem make_problem(const dnn::Network& net,
                              const std::array<profile::LatencyEstimator, 3>& estimators,
                              const net::NetworkCondition& condition) {
  PartitionProblem p = make_problem_shared(net, condition);
  for (dnn::LayerId id = 0; id < net.num_layers(); ++id) {
    const profile::LayerCost cost = profile::layer_cost(net, id);
    TierTimes& times = p.vertex_time[dnn::Network::vertex_of(id)];
    for (const Tier tier : kAllTiers)
      times.at(tier) = estimators[static_cast<std::size_t>(index(tier))].predict(cost);
  }
  p.validate();
  return p;
}

PartitionProblem make_problem_exact(const dnn::Network& net, const profile::TierNodes& nodes,
                                    const net::NetworkCondition& condition) {
  PartitionProblem p = make_problem_shared(net, condition);
  const profile::NodeSpec* specs[3] = {&nodes.device, &nodes.edge, &nodes.cloud};
  for (dnn::LayerId id = 0; id < net.num_layers(); ++id) {
    const profile::LayerCost cost = profile::layer_cost(net, id);
    TierTimes& times = p.vertex_time[dnn::Network::vertex_of(id)];
    for (const Tier tier : kAllTiers)
      times.at(tier) = profile::HardwareModel::expected_latency(
          cost, *specs[static_cast<std::size_t>(index(tier))]);
  }
  p.validate();
  return p;
}

}  // namespace d3::core
