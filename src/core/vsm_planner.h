// Multi-stack VSM planning (extension; the paper's Algorithm 2 fuses the whole
// edge-resident convolution run into ONE stack, and AOFL — which the paper
// cites as the tile-optimisation extension — chooses partitions adaptively).
//
// Fusing deeper amortises the scatter/gather synchronisation between the edge
// coordinator and its workers but compounds the halo overlap (recomputed
// FLOPs); splitting the run into several consecutive fused stacks trades sync
// traffic for redundancy. With the paper's idealisation (intra-tier transfer
// cost = 0, `lan_mbps = 0`) single-layer stacks would always win, which is
// exactly why fused tiles exist — so the planner models the edge LAN
// explicitly: every stack pays one scatter of its (halo-inflated) input tiles
// and one gather of its output tiles at `lan_mbps`.
//
// plan_edge_stacks() minimises total edge-stage time over all contiguous
// segmentations of the run by dynamic programming (O(L^2) segment evaluations).
#pragma once

#include <span>
#include <vector>

#include "core/vsm.h"

namespace d3::core {

struct EdgeStackPlan {
  std::vector<FusedTilePlan> stacks;  // consecutive segments covering the run
  double compute_seconds = 0;         // Σ per-stack parallel (max-tile) time
  double sync_seconds = 0;            // Σ per-stack scatter + gather time
  double total_seconds() const { return compute_seconds + sync_seconds; }
};

// Scatter bytes of a fused stack: the (halo-inflated) first-layer input crops
// of every tile; gather bytes: the disjoint output tiles.
std::int64_t stack_scatter_bytes(const FusedTilePlan& plan);
std::int64_t stack_gather_bytes(const FusedTilePlan& plan);

// Scatter+gather wall-clock of one stack on a LAN of `lan_mbps` (coordinator
// NIC serialises the transfers; 0 disables sync costs — the paper's model).
double stack_sync_seconds(const FusedTilePlan& plan, double lan_mbps);

// Optimal contiguous segmentation of `run` (a tileable chain, e.g. from
// longest_tileable_run) into fused stacks executed on `rows x cols` edge nodes.
// Single-stack (the paper's Algorithm 2) falls out when lan_mbps makes sync
// expensive; fine-grained splits win on fast LANs.
EdgeStackPlan plan_edge_stacks(const dnn::Network& net, std::span<const dnn::LayerId> run,
                               int rows, int cols, const profile::NodeSpec& node,
                               double lan_mbps);

// The paper's baseline for comparison: the whole run as one fused stack.
EdgeStackPlan single_stack_plan(const dnn::Network& net, std::span<const dnn::LayerId> run,
                                int rows, int cols, const profile::NodeSpec& node,
                                double lan_mbps);

}  // namespace d3::core
