#include "core/vsm_executor.h"

#include <stdexcept>
#include <vector>

#include "exec/ops.h"

namespace d3::core {

namespace {

exec::Tile crop(const dnn::Tensor& full, const exec::Region& region) {
  const dnn::Shape& s = full.shape();
  if (region.x0 < 0 || region.y0 < 0 || region.x1 > s.w || region.y1 > s.h)
    throw std::invalid_argument("crop: region outside tensor");
  exec::Tile tile;
  tile.data = dnn::Tensor(dnn::Shape{s.c, region.height(), region.width()});
  tile.origin_x = region.x0;
  tile.origin_y = region.y0;
  tile.full_w = s.w;
  tile.full_h = s.h;
  exec::copy_region_from_map(full, region, tile.data.data());
  return tile;
}

const exec::Region& out_region_of(const FusedTilePlan& plan,
                                  const FusedTilePlan::TilePlan& tile, std::size_t j) {
  return j + 1 < plan.stack.size() ? tile.input_regions[j + 1] : tile.output_region;
}

std::pair<int, int> full_out_extent(const FusedTilePlan& plan, std::size_t j) {
  if (j + 1 < plan.stack.size())
    return {plan.input_shapes[j + 1].w, plan.input_shapes[j + 1].h};
  return {plan.output_shape.w, plan.output_shape.h};
}

}  // namespace

exec::Tile extract_tile_input(const dnn::Tensor& stack_input, const FusedTilePlan& plan,
                              std::size_t tile_index) {
  if (!(stack_input.shape() == plan.input_shapes.front()))
    throw std::invalid_argument("extract_tile_input: input shape " +
                                stack_input.shape().to_string() + " != stack input " +
                                plan.input_shapes.front().to_string());
  return crop(stack_input, plan.tiles.at(tile_index).input_regions.front());
}

exec::Tile run_single_tile(const dnn::Network& net, const exec::WeightStore& weights,
                           const exec::Tile& input, const FusedTilePlan& plan,
                           std::size_t tile_index) {
  const FusedTilePlan::TilePlan& tile_plan = plan.tiles.at(tile_index);
  exec::Tile current = input;
  for (std::size_t j = 0; j < plan.stack.size(); ++j) {
    const dnn::LayerId id = plan.stack[j];
    const dnn::LayerSpec& spec = net.layer(id).spec;
    const exec::Region& out = out_region_of(plan, tile_plan, j);
    const auto [full_w, full_h] = full_out_extent(plan, j);
    switch (spec.kind) {
      case dnn::LayerKind::kConv:
        current = exec::conv2d_region(current, spec, weights.layer(id), out, full_w, full_h);
        break;
      case dnn::LayerKind::kMaxPool:
      case dnn::LayerKind::kAvgPool:
        current = exec::pool_region(current, spec, out, full_w, full_h);
        break;
      case dnn::LayerKind::kReLU:
        current = exec::relu_region(std::move(current));
        break;
      case dnn::LayerKind::kBatchNorm:
        current = exec::batch_norm_region(std::move(current), weights.layer(id));
        break;
      default:
        throw std::logic_error("run_single_tile: non-tileable layer in plan");
    }
  }
  return current;
}

dnn::Tensor run_fused_tiles(const dnn::Network& net, const exec::WeightStore& weights,
                            const dnn::Tensor& stack_input, const FusedTilePlan& plan,
                            const TileParallelFor& parallel_for) {
  std::vector<exec::Tile> out_tiles(plan.num_tiles());
  const auto compute = [&](std::size_t t) {
    const exec::Tile input = extract_tile_input(stack_input, plan, t);
    out_tiles[t] = run_single_tile(net, weights, input, plan, t);
  };
  if (parallel_for) {
    parallel_for(plan.num_tiles(), compute);
  } else {
    for (std::size_t t = 0; t < plan.num_tiles(); ++t) compute(t);
  }

  dnn::Tensor output(plan.output_shape);
  for (std::size_t t = 0; t < plan.num_tiles(); ++t) {
    const exec::Region& region = plan.tiles[t].output_region;
    if (out_tiles[t].data.shape().h != region.height() ||
        out_tiles[t].data.shape().w != region.width())
      throw std::logic_error("run_fused_tiles: tile output does not match its region");
    exec::copy_region_to_map(out_tiles[t].data.data(), region, output);
  }
  return output;
}

dnn::Tensor run_stack_serial(const dnn::Network& net, const exec::WeightStore& weights,
                             const dnn::Tensor& stack_input,
                             std::span<const dnn::LayerId> stack) {
  if (stack.empty()) throw std::invalid_argument("run_stack_serial: empty stack");
  dnn::Tensor current = stack_input;
  for (const dnn::LayerId id : stack) {
    const dnn::LayerSpec& spec = net.layer(id).spec;
    switch (spec.kind) {
      case dnn::LayerKind::kConv:
        current = exec::conv2d(current, spec, weights.layer(id));
        break;
      case dnn::LayerKind::kMaxPool:
      case dnn::LayerKind::kAvgPool:
        current = exec::pool2d(current, spec);
        break;
      case dnn::LayerKind::kReLU:
        current = exec::relu(std::move(current));
        break;
      case dnn::LayerKind::kBatchNorm:
        current = exec::batch_norm(std::move(current), weights.layer(id));
        break;
      default:
        throw std::logic_error("run_stack_serial: non-tileable layer");
    }
  }
  return current;
}

}  // namespace d3::core
