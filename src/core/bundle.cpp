#include "core/bundle.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <stdexcept>

#include "rpc/wire.h"

namespace d3::core {

std::vector<std::uint8_t> encode_bundle(const DeploymentBundle& bundle) {
  rpc::WireWriter w;
  w.u32(rpc::kBundleMagic);
  w.u16(rpc::kWireVersion);
  w.str(bundle.node_name);
  w.str(bundle.model_name);
  w.u32(bundle.vsm_workers);
  w.u64(bundle.weights_hash);
  w.blob(bundle.plan_bytes);
  w.blob(bundle.shard_bytes);
  w.blob(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(bundle.book_text.data()),
      bundle.book_text.size()));
  w.u64(rpc::fnv1a(w.buffer()));
  return w.take();
}

DeploymentBundle decode_bundle(std::span<const std::uint8_t> bytes) {
  // The trailing checksum covers every byte before it; verify before trusting
  // any field so a corrupted length prefix cannot route around the check.
  if (bytes.size() < 8) throw rpc::WireError("bundle: truncated (no content hash)");
  const std::span<const std::uint8_t> body = bytes.first(bytes.size() - 8);
  rpc::WireReader trailer(bytes.subspan(bytes.size() - 8));
  if (trailer.u64() != rpc::fnv1a(body))
    throw rpc::WireError("bundle: content hash mismatch (corrupt or truncated file)");

  rpc::WireReader r(body);
  if (r.u32() != rpc::kBundleMagic) throw rpc::WireError("bundle: bad magic");
  const std::uint16_t version = r.u16();
  if (version != rpc::kWireVersion)
    throw rpc::WireError("bundle: unsupported wire version " + std::to_string(version));
  DeploymentBundle bundle;
  bundle.node_name = r.str();
  bundle.model_name = r.str();
  bundle.vsm_workers = r.u32();
  bundle.weights_hash = r.u64();
  bundle.plan_bytes = r.blob();
  bundle.shard_bytes = r.blob();
  const std::vector<std::uint8_t> book = r.blob();
  bundle.book_text.assign(book.begin(), book.end());
  r.expect_end("bundle");
  return bundle;
}

void write_bundle_file(const std::string& path, const DeploymentBundle& bundle) {
  const std::vector<std::uint8_t> bytes = encode_bundle(bundle);
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) throw std::runtime_error("bundle: cannot create '" + tmp + "'");
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      ::close(fd);
      std::remove(tmp.c_str());
      throw std::runtime_error("bundle: write to '" + tmp + "' failed");
    }
    written += static_cast<std::size_t>(n);
  }
  // Durability before visibility: the rename must never expose a file whose
  // bytes are still in flight.
  if (::fsync(fd) != 0 || ::close(fd) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("bundle: fsync of '" + tmp + "' failed");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("bundle: rename to '" + path + "' failed");
  }
}

DeploymentBundle load_bundle_file(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw std::runtime_error("bundle: cannot open '" + path + "'");
  struct ::stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw std::runtime_error("bundle: cannot stat '" + path + "'");
  }
  const std::size_t size = static_cast<std::size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    throw rpc::WireError("bundle: '" + path + "' is empty");
  }
  void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps the pages; the fd is no longer needed
  if (map == MAP_FAILED) throw std::runtime_error("bundle: mmap of '" + path + "' failed");
  try {
    DeploymentBundle bundle =
        decode_bundle({static_cast<const std::uint8_t*>(map), size});
    ::munmap(map, size);
    return bundle;
  } catch (...) {
    ::munmap(map, size);
    throw;
  }
}

}  // namespace d3::core
