#include "core/plan_io.h"

#include <sstream>
#include <stdexcept>

namespace d3::core {

namespace {

char tier_letter(Tier t) {
  switch (t) {
    case Tier::kDevice: return 'd';
    case Tier::kEdge: return 'e';
    case Tier::kCloud: return 'c';
  }
  return '?';
}

Tier tier_from_letter(char ch) {
  switch (ch) {
    case 'd': return Tier::kDevice;
    case 'e': return Tier::kEdge;
    case 'c': return Tier::kCloud;
    default: throw std::invalid_argument(std::string("plan: unknown tier letter '") + ch + "'");
  }
}

}  // namespace

std::string serialize_plan(const SerializablePlan& plan) {
  std::ostringstream os;
  os << "d3-plan v1\n";
  os << "model " << plan.model_name << "\n";
  os << "tiers";
  for (const Tier t : plan.assignment.tier) os << ' ' << tier_letter(t);
  os << "\n";
  if (plan.vsm) {
    os << "vsm " << plan.vsm->grid_rows << "x" << plan.vsm->grid_cols << ' ';
    for (std::size_t j = 0; j < plan.vsm->stack.size(); ++j) {
      if (j > 0) os << ',';
      os << plan.vsm->stack[j];
    }
    os << "\n";
  }
  return os.str();
}

SerializablePlan parse_plan(const std::string& text, const dnn::Network& net) {
  std::istringstream is(text);
  std::string line;

  if (!std::getline(is, line) || line != "d3-plan v1")
    throw std::invalid_argument("plan: bad header (expected 'd3-plan v1')");

  SerializablePlan plan;
  if (!std::getline(is, line) || line.rfind("model ", 0) != 0)
    throw std::invalid_argument("plan: missing 'model' line");
  plan.model_name = line.substr(6);
  if (plan.model_name != net.name())
    throw std::invalid_argument("plan: built for model '" + plan.model_name +
                                "', applied to '" + net.name() + "'");

  if (!std::getline(is, line) || line.rfind("tiers", 0) != 0)
    throw std::invalid_argument("plan: missing 'tiers' line");
  {
    std::istringstream ts(line.substr(5));
    std::string token;
    while (ts >> token) {
      if (token.size() != 1) throw std::invalid_argument("plan: bad tier token '" + token + "'");
      plan.assignment.tier.push_back(tier_from_letter(token[0]));
    }
  }
  if (plan.assignment.tier.size() != net.num_layers() + 1)
    throw std::invalid_argument("plan: " + std::to_string(plan.assignment.tier.size()) +
                                " tiers for a network of " + std::to_string(net.num_layers()) +
                                " layers");
  if (plan.assignment.tier[0] != Tier::kDevice)
    throw std::invalid_argument("plan: v0 must be on the device");

  if (std::getline(is, line) && !line.empty()) {
    if (line.rfind("vsm ", 0) != 0) throw std::invalid_argument("plan: unexpected line '" + line + "'");
    std::istringstream vs(line.substr(4));
    std::string grid, ids;
    if (!(vs >> grid >> ids)) throw std::invalid_argument("plan: malformed vsm line");
    const auto x = grid.find('x');
    if (x == std::string::npos) throw std::invalid_argument("plan: malformed vsm grid");
    const int rows = std::stoi(grid.substr(0, x));
    const int cols = std::stoi(grid.substr(x + 1));
    std::vector<dnn::LayerId> stack;
    std::istringstream ls(ids);
    std::string id;
    while (std::getline(ls, id, ',')) {
      const unsigned long value = std::stoul(id);
      if (value >= net.num_layers()) throw std::invalid_argument("plan: vsm layer id out of range");
      stack.push_back(value);
    }
    // Rebuilds (and thereby validates) the tile geometry from the model.
    plan.vsm = make_fused_tile_plan(net, stack, rows, cols);
  }
  return plan;
}

}  // namespace d3::core
