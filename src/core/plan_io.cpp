#include "core/plan_io.h"

#include <charconv>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "rpc/wire.h"

namespace d3::core {

namespace {

char tier_letter(Tier t) {
  switch (t) {
    case Tier::kDevice: return 'd';
    case Tier::kEdge: return 'e';
    case Tier::kCloud: return 'c';
  }
  return '?';
}

Tier tier_from_letter(char ch) {
  switch (ch) {
    case 'd': return Tier::kDevice;
    case 'e': return Tier::kEdge;
    case 'c': return Tier::kCloud;
    default: throw std::invalid_argument(std::string("plan: unknown tier letter '") + ch + "'");
  }
}

// Strict integer parse: the whole token must be digits (no sign, no trailing
// garbage — "2x2junk" or "3,4,oops" fail instead of being half-read) and the
// value must fit an int, so later narrowing casts can never truncate a
// corrupted token into a plausible-looking small number.
long parse_number(std::string_view token, const char* what) {
  long value = 0;
  const auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc{} || ptr != token.data() + token.size() || value < 0 ||
      value > std::numeric_limits<int>::max())
    throw std::invalid_argument(std::string("plan: bad ") + what + " '" + std::string(token) +
                                "'");
  return value;
}

// Semantic validation shared by the text and binary parsers.
void check_assignment(const SerializablePlan& plan, const dnn::Network& net) {
  if (plan.model_name != net.name())
    throw std::invalid_argument("plan: built for model '" + plan.model_name +
                                "', applied to '" + net.name() + "'");
  if (plan.assignment.tier.size() != net.num_layers() + 1)
    throw std::invalid_argument("plan: " + std::to_string(plan.assignment.tier.size()) +
                                " tiers for a network of " + std::to_string(net.num_layers()) +
                                " layers");
  if (plan.assignment.tier[0] != Tier::kDevice)
    throw std::invalid_argument("plan: v0 must be on the device");
}

std::vector<dnn::LayerId> check_stack_ids(const std::vector<unsigned long>& ids,
                                          const dnn::Network& net) {
  if (ids.empty()) throw std::invalid_argument("plan: empty vsm stack");
  std::vector<dnn::LayerId> stack;
  stack.reserve(ids.size());
  for (const unsigned long value : ids) {
    if (value >= net.num_layers())
      throw std::invalid_argument("plan: vsm layer id out of range");
    stack.push_back(value);
  }
  return stack;
}

}  // namespace

std::string serialize_plan(const SerializablePlan& plan) {
  std::ostringstream os;
  os << "d3-plan v1\n";
  os << "model " << plan.model_name << "\n";
  os << "tiers";
  for (const Tier t : plan.assignment.tier) os << ' ' << tier_letter(t);
  os << "\n";
  if (plan.vsm) {
    os << "vsm " << plan.vsm->grid_rows << "x" << plan.vsm->grid_cols << ' ';
    for (std::size_t j = 0; j < plan.vsm->stack.size(); ++j) {
      if (j > 0) os << ',';
      os << plan.vsm->stack[j];
    }
    os << "\n";
  }
  return os.str();
}

SerializablePlan parse_plan(const std::string& text, const dnn::Network& net) {
  std::istringstream is(text);
  std::string line;

  if (!std::getline(is, line) || line != "d3-plan v1")
    throw std::invalid_argument("plan: bad header (expected 'd3-plan v1')");

  SerializablePlan plan;
  if (!std::getline(is, line) || line.rfind("model ", 0) != 0)
    throw std::invalid_argument("plan: missing 'model' line");
  plan.model_name = line.substr(6);

  if (!std::getline(is, line) || line.rfind("tiers", 0) != 0)
    throw std::invalid_argument("plan: missing 'tiers' line");
  {
    std::istringstream ts(line.substr(5));
    std::string token;
    while (ts >> token) {
      if (token.size() != 1) throw std::invalid_argument("plan: bad tier token '" + token + "'");
      plan.assignment.tier.push_back(tier_from_letter(token[0]));
    }
  }
  check_assignment(plan, net);

  if (std::getline(is, line) && !line.empty()) {
    if (line.rfind("vsm ", 0) != 0) throw std::invalid_argument("plan: unexpected line '" + line + "'");
    std::istringstream vs(line.substr(4));
    std::string grid, ids, extra;
    if (!(vs >> grid >> ids)) throw std::invalid_argument("plan: malformed vsm line");
    if (vs >> extra) throw std::invalid_argument("plan: trailing vsm token '" + extra + "'");
    const auto x = grid.find('x');
    if (x == std::string::npos) throw std::invalid_argument("plan: malformed vsm grid");
    const long rows = parse_number(grid.substr(0, x), "vsm grid rows");
    const long cols = parse_number(grid.substr(x + 1), "vsm grid cols");
    std::vector<unsigned long> raw_ids;
    std::istringstream ls(ids);
    std::string id;
    while (std::getline(ls, id, ','))
      raw_ids.push_back(static_cast<unsigned long>(parse_number(id, "vsm layer id")));
    const std::vector<dnn::LayerId> stack = check_stack_ids(raw_ids, net);
    // Rebuilds (and thereby validates) the tile geometry from the model.
    plan.vsm = make_fused_tile_plan(net, stack, static_cast<int>(rows), static_cast<int>(cols));
  }
  // Nothing may follow: trailing garbage means a corrupted or reordered plan.
  while (std::getline(is, line))
    if (!line.empty()) throw std::invalid_argument("plan: unexpected line '" + line + "'");
  return plan;
}

std::vector<std::uint8_t> serialize_plan_binary(const SerializablePlan& plan) {
  rpc::WireWriter w;
  w.u32(rpc::kPlanMagic);
  w.u16(rpc::kWireVersion);
  w.str(plan.model_name);
  w.u32(static_cast<std::uint32_t>(plan.assignment.tier.size()));
  for (const Tier t : plan.assignment.tier) w.u8(static_cast<std::uint8_t>(index(t)));
  w.u8(plan.vsm ? 1 : 0);
  if (plan.vsm) {
    w.i32(plan.vsm->grid_rows);
    w.i32(plan.vsm->grid_cols);
    w.u32(static_cast<std::uint32_t>(plan.vsm->stack.size()));
    for (const dnn::LayerId id : plan.vsm->stack) w.u64(id);
  }
  return w.take();
}

SerializablePlan parse_plan_binary(std::span<const std::uint8_t> bytes,
                                   const dnn::Network& net) {
  rpc::WireReader r(bytes);
  if (r.u32() != rpc::kPlanMagic) throw rpc::WireError("plan: bad magic");
  if (r.u16() != rpc::kWireVersion) throw rpc::WireError("plan: unsupported wire version");

  SerializablePlan plan;
  plan.model_name = r.str();
  const std::uint32_t tiers = r.u32();
  if (tiers > net.num_layers() + 1)
    throw std::invalid_argument("plan: " + std::to_string(tiers) + " tiers for a network of " +
                                std::to_string(net.num_layers()) + " layers");
  plan.assignment.tier.reserve(tiers);
  for (std::uint32_t i = 0; i < tiers; ++i) {
    const std::uint8_t t = r.u8();
    if (t > 2) throw rpc::WireError("plan: invalid tier value " + std::to_string(t));
    plan.assignment.tier.push_back(static_cast<Tier>(t));
  }
  check_assignment(plan, net);

  if (r.u8() != 0) {
    const std::int32_t rows = r.i32();
    const std::int32_t cols = r.i32();
    const std::uint32_t count = r.u32();
    if (count > net.num_layers()) throw rpc::WireError("plan: vsm stack larger than network");
    std::vector<unsigned long> raw_ids;
    raw_ids.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i)
      raw_ids.push_back(static_cast<unsigned long>(r.u64()));
    const std::vector<dnn::LayerId> stack = check_stack_ids(raw_ids, net);
    plan.vsm = make_fused_tile_plan(net, stack, rows, cols);
  }
  r.expect_end("plan");
  return plan;
}

}  // namespace d3::core
