// The three computing tiers of the edge paradigm (§III-A) and the order
// d ≻ e ≻ c used by Prop. 1: data flows device -> edge -> cloud, and a tier is
// "before" (more device-ward than) another when its enum value is smaller.
#pragma once

#include <array>
#include <string_view>

namespace d3::core {

enum class Tier : int { kDevice = 0, kEdge = 1, kCloud = 2 };

inline constexpr std::array<Tier, 3> kAllTiers = {Tier::kDevice, Tier::kEdge, Tier::kCloud};

constexpr int index(Tier t) { return static_cast<int>(t); }

// The paper's order relation: a ≻ b means a is strictly more device-ward.
constexpr bool before(Tier a, Tier b) { return index(a) < index(b); }
// a ⪰ b.
constexpr bool before_or_same(Tier a, Tier b) { return index(a) <= index(b); }

constexpr std::string_view tier_name(Tier t) {
  switch (t) {
    case Tier::kDevice: return "device";
    case Tier::kEdge: return "edge";
    case Tier::kCloud: return "cloud";
  }
  return "?";
}

// Per-vertex processing times {t_d, t_e, t_c} (the vertex weight Tvi of §III-C).
struct TierTimes {
  std::array<double, 3> seconds{0.0, 0.0, 0.0};

  double at(Tier t) const { return seconds[static_cast<std::size_t>(index(t))]; }
  double& at(Tier t) { return seconds[static_cast<std::size_t>(index(t))]; }
};

}  // namespace d3::core
