// Deployment bundles: the AOT artefact `d3c` compiles per tier node and
// `d3_node --bundle` boots from, with no coordinator round-trip.
//
// One bundle is everything a single node needs to come up live:
//
//   u32 bundle magic | u16 wire version
//   str node_name            the worker this bundle was compiled for
//   str model_name           resolved against the shared model zoo at boot
//   u32 vsm_workers          pool width the node serves tiles with
//   u64 weights_hash         FNV-1a over the FULL model's encode_weights
//                            bytes — identical across every tier's bundle,
//                            the O(1) identity the weights-elided kConfig
//                            form checks against (PROTOCOL.md)
//   blob plan_bytes          serialize_plan_binary output, verbatim
//   blob shard_bytes         encode_weight_shard output: only the layers
//                            this node executes carry parameters
//   blob book_text           the address-book file, so the node finds its
//                            own listen endpoint without any flag plumbing
//   u64 content_hash         FNV-1a over every preceding byte of the bundle
//
// Decoding is exactly as strict as plan_io: truncation at any boundary, a bad
// magic or version, trailing bytes, and a content-hash mismatch all raise
// rpc::WireError instead of yielding a partially-populated bundle. Plan and
// shard validation against the model happen one level up (the consumer
// resolves model_name against the zoo first); shard/plan agreement is
// enforced by the boot path via WeightStore::layers_for_node.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace d3::core {

struct DeploymentBundle {
  std::string node_name;
  std::string model_name;
  std::uint32_t vsm_workers = 0;
  std::uint64_t weights_hash = 0;
  std::vector<std::uint8_t> plan_bytes;
  std::vector<std::uint8_t> shard_bytes;
  std::string book_text;
};

std::vector<std::uint8_t> encode_bundle(const DeploymentBundle& bundle);
DeploymentBundle decode_bundle(std::span<const std::uint8_t> bytes);

// Atomic on-disk form: writes `path + ".tmp"` then renames, so a half-written
// bundle can never be booted from. Throws std::runtime_error on I/O failure.
void write_bundle_file(const std::string& path, const DeploymentBundle& bundle);

// mmap-loads and decodes the file at `path` (read-only; the copy into the
// returned bundle is the only pass over the bytes). Throws std::runtime_error
// on I/O failure and rpc::WireError on malformed content.
DeploymentBundle load_bundle_file(const std::string& path);

}  // namespace d3::core
