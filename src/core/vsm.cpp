#include "core/vsm.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "profile/hardware_model.h"

namespace d3::core {

Interval rtc_dimension(Interval out, int kernel, int stride, int pad, int full) {
  if (out.begin < 0 || out.end <= out.begin)
    throw std::invalid_argument("rtc_dimension: bad output interval");
  // Eq. (4): coordinates in the padded input feature map.
  const int padded_begin = stride * out.begin;
  const int padded_end = stride * (out.end - 1) + kernel;
  // Eq. (5): offset the paddings away, clamping into the unpadded map. The
  // min(full, .) clamp extends the paper's special case to partial border tiles.
  Interval in;
  in.begin = std::max(0, padded_begin - pad);
  in.end = padded_end == full + 2 * pad ? full
                                        : std::min(full, std::max(0, padded_end - pad));
  if (in.end <= in.begin)
    throw std::logic_error("rtc_dimension: degenerate input interval (window exceeds map?)");
  return in;
}

namespace {

// Input region of `layer` needed to produce its `out` region. Elementwise
// layers pass the region through; windowed layers apply RTC per dimension.
exec::Region rtc_layer(const dnn::NetworkLayer& layer, const dnn::Shape& input_shape,
                       const exec::Region& out) {
  switch (layer.spec.kind) {
    case dnn::LayerKind::kReLU:
    case dnn::LayerKind::kBatchNorm:
      return out;
    case dnn::LayerKind::kConv:
    case dnn::LayerKind::kMaxPool:
    case dnn::LayerKind::kAvgPool: {
      const dnn::Window& w = layer.spec.window;
      const Interval ix = rtc_dimension(Interval{out.x0, out.x1}, w.kernel_w, w.stride_w,
                                        w.pad_w, input_shape.w);
      const Interval iy = rtc_dimension(Interval{out.y0, out.y1}, w.kernel_h, w.stride_h,
                                        w.pad_h, input_shape.h);
      return exec::Region{ix.begin, iy.begin, ix.end, iy.end};
    }
    default:
      throw std::invalid_argument("rtc_layer: layer '" + layer.spec.name +
                                  "' is not VSM-tileable");
  }
}

void validate_stack(const dnn::Network& net, std::span<const dnn::LayerId> stack) {
  if (stack.empty()) throw std::invalid_argument("VSM: empty layer stack");
  for (std::size_t j = 0; j < stack.size(); ++j) {
    const dnn::NetworkLayer& layer = net.layer(stack[j]);
    if (!dnn::is_vsm_tileable(layer.spec.kind))
      throw std::invalid_argument("VSM: layer '" + layer.spec.name + "' is not tileable");
    if (layer.inputs.size() != 1)
      throw std::invalid_argument("VSM: layer '" + layer.spec.name + "' is not single-input");
    if (j > 0 && layer.inputs[0] != stack[j - 1])
      throw std::invalid_argument("VSM: stack is not a chain at '" + layer.spec.name + "'");
  }
}

}  // namespace

FusedTilePlan make_fused_tile_plan(const dnn::Network& net,
                                   std::span<const dnn::LayerId> stack, int grid_rows,
                                   int grid_cols) {
  validate_stack(net, stack);

  FusedTilePlan plan;
  plan.stack.assign(stack.begin(), stack.end());
  plan.grid_rows = grid_rows;
  plan.grid_cols = grid_cols;
  for (const dnn::LayerId id : stack) plan.input_shapes.push_back(net.input_shapes(id)[0]);
  plan.output_shape = net.layer(stack.back()).output_shape;

  const int out_h = plan.output_shape.h;
  const int out_w = plan.output_shape.w;
  if (grid_rows < 1 || grid_cols < 1 || grid_rows > out_h || grid_cols > out_w)
    throw std::invalid_argument("VSM: grid " + std::to_string(grid_rows) + "x" +
                                std::to_string(grid_cols) + " does not fit output " +
                                plan.output_shape.to_string());

  for (int a = 0; a < grid_rows; ++a) {
    for (int b = 0; b < grid_cols; ++b) {
      FusedTilePlan::TilePlan tile;
      // Balanced, non-overlapping, exhaustive grid over the output map.
      tile.output_region = exec::Region{
          b * out_w / grid_cols, a * out_h / grid_rows,
          (b + 1) * out_w / grid_cols, (a + 1) * out_h / grid_rows};
      tile.input_regions.resize(stack.size());
      // Algorithm 2: RTC from ck back to c1.
      exec::Region region = tile.output_region;
      for (std::size_t j = stack.size(); j-- > 0;) {
        region = rtc_layer(net.layer(stack[j]), plan.input_shapes[j], region);
        tile.input_regions[j] = region;
      }
      plan.tiles.push_back(std::move(tile));
    }
  }
  return plan;
}

std::vector<dnn::LayerId> longest_tileable_run(const dnn::Network& net,
                                               std::span<const dnn::LayerId> layer_ids) {
  // A layer whose output feeds more than one consumer (residual forks) may only
  // *end* a stack: intermediate tile outputs exist only as fragments on the
  // edge workers, so nothing outside the stack can read them.
  std::vector<int> consumers(net.num_layers(), 0);
  for (dnn::LayerId id = 0; id < net.num_layers(); ++id)
    for (const dnn::LayerId in : net.layer(id).inputs)
      if (in != dnn::kNetworkInput) ++consumers[in];

  std::vector<dnn::LayerId> best, current;
  std::int64_t best_flops = 0, current_flops = 0;
  const auto commit = [&] {
    if (current_flops > best_flops) {
      best = current;
      best_flops = current_flops;
    }
    current.clear();
    current_flops = 0;
  };
  for (const dnn::LayerId id : layer_ids) {
    const dnn::NetworkLayer& layer = net.layer(id);
    const bool chains = !current.empty() && layer.inputs.size() == 1 &&
                        layer.inputs[0] == current.back();
    const bool starts = current.empty();
    if (!dnn::is_vsm_tileable(layer.spec.kind) || layer.inputs.size() != 1 ||
        (!starts && !chains)) {
      commit();
      if (dnn::is_vsm_tileable(layer.spec.kind) && layer.inputs.size() == 1) {
        current.push_back(id);
        current_flops = layer.flops;
      }
    } else {
      current.push_back(id);
      current_flops += layer.flops;
    }
    if (!current.empty() && consumers[current.back()] > 1) commit();
  }
  commit();
  return best;
}

namespace {

double area(const exec::Region& r) {
  return static_cast<double>(r.width()) * static_cast<double>(r.height());
}

// Output region of stack layer j for one tile.
const exec::Region& tile_out_region(const FusedTilePlan& plan,
                                    const FusedTilePlan::TilePlan& tile, std::size_t j) {
  return j + 1 < plan.stack.size() ? tile.input_regions[j + 1] : tile.output_region;
}

// Full output spatial extent of stack layer j.
std::pair<int, int> full_out_extent(const FusedTilePlan& plan, std::size_t j) {
  if (j + 1 < plan.stack.size())
    return {plan.input_shapes[j + 1].w, plan.input_shapes[j + 1].h};
  return {plan.output_shape.w, plan.output_shape.h};
}

// Per-layer cost restricted to one tile: FLOPs and activation bytes scale with
// the tile's share of the spatial extent; the node holds the full parameters.
profile::LayerCost tile_layer_cost(const dnn::Network& net, const FusedTilePlan& plan,
                                   const FusedTilePlan::TilePlan& tile, std::size_t j) {
  profile::LayerCost full = profile::layer_cost(net, plan.stack[j]);
  const auto [fw, fh] = full_out_extent(plan, j);
  const double out_share = area(tile_out_region(plan, tile, j)) /
                           (static_cast<double>(fw) * static_cast<double>(fh));
  const double in_share =
      area(tile.input_regions[j]) /
      (static_cast<double>(plan.input_shapes[j].w) * static_cast<double>(plan.input_shapes[j].h));
  full.flops = static_cast<std::int64_t>(static_cast<double>(full.flops) * out_share);
  full.input_bytes = static_cast<std::int64_t>(static_cast<double>(full.input_bytes) * in_share);
  full.output_bytes =
      static_cast<std::int64_t>(static_cast<double>(full.output_bytes) * out_share);
  return full;
}

}  // namespace

std::int64_t tile_flops(const dnn::Network& net, const FusedTilePlan& plan,
                        std::size_t tile_index) {
  const FusedTilePlan::TilePlan& tile = plan.tiles.at(tile_index);
  std::int64_t total = 0;
  for (std::size_t j = 0; j < plan.stack.size(); ++j)
    total += tile_layer_cost(net, plan, tile, j).flops;
  return total;
}

double redundancy_factor(const dnn::Network& net, const FusedTilePlan& plan) {
  std::int64_t tiled = 0;
  for (std::size_t t = 0; t < plan.tiles.size(); ++t) tiled += tile_flops(net, plan, t);
  std::int64_t serial = 0;
  for (const dnn::LayerId id : plan.stack) serial += net.layer(id).flops;
  return serial == 0 ? 1.0 : static_cast<double>(tiled) / static_cast<double>(serial);
}

double serial_stack_latency(const dnn::Network& net, const FusedTilePlan& plan,
                            const profile::NodeSpec& node) {
  double total = 0.0;
  for (const dnn::LayerId id : plan.stack)
    total += profile::HardwareModel::expected_latency(profile::layer_cost(net, id), node);
  return total;
}

double parallel_stack_latency(const dnn::Network& net, const FusedTilePlan& plan,
                              const profile::NodeSpec& node) {
  double worst = 0.0;
  for (const FusedTilePlan::TilePlan& tile : plan.tiles) {
    double t = 0.0;
    for (std::size_t j = 0; j < plan.stack.size(); ++j)
      t += profile::HardwareModel::expected_latency(tile_layer_cost(net, plan, tile, j), node);
    worst = std::max(worst, t);
  }
  return worst;
}

}  // namespace d3::core
