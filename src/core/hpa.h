// Horizontal Partition Algorithm (paper Algorithm 1, §III-E).
//
// HPA splits the DNN DAG into three sub-graphs executed on device, edge and
// cloud. It walks the longest-distance graph layers Z0..Zn front to back; in
// each layer it restricts every vertex's candidate tiers to those allowed by
// Prop. 1 (no vertex strictly device-ward of its most device-ward predecessor),
// picks the optimal tier by the local rule of Eq. (2) plus a downstream
// lookahead, then applies the SIS update of Prop. 2. Partition quality is
// measured by the Θ objective in partition.h.
//
// Lookahead note: the paper's §III-E lookahead enumerates Table-I placements of
// (vi, largest direct successor). That single-step horizon degenerates on deep
// modular DAGs — on Inception-v4 every stem layer individually looks cheaper on
// the device than paying its input transfer, so the partition never leaves the
// device even though the accumulated device time dwarfs one uplink crossing.
// This implementation generalises the same idea to a suffix lookahead: each
// candidate tier li is additionally charged the best-case cost of completing
// all downstream vertices at some tier l' ⪰ li, including one crossing of vi's
// output (Table I's pairwise rows are the one-successor specialisation of this
// term). Disable via HpaOptions::io_heuristic to get the bare Eq. (2) greedy.
//
// hpa_local_update() implements the paper's dynamic adaptation: when one
// vertex's conditions change, only its neighbourhood (the vertex, its SIS
// siblings, its direct successors and their SIS siblings) is recomputed.
#pragma once

#include <vector>

#include "core/partition.h"

namespace d3::core {

struct HpaOptions {
  // Apply the SIS update after each graph layer (Prop. 2). Ablatable.
  bool sis_update = true;
  // Apply the downstream lookahead (the generalised Table-I heuristic, see
  // header comment). When false every vertex uses the purely local Eq. (2).
  // Ablatable.
  bool io_heuristic = true;
  // A vertex only moves cloud-ward of its most device-ward feasible tier when
  // the estimated win exceeds this margin; near-ties would otherwise cut DAG
  // modules mid-branch (every severed branch pays its own crossing).
  double crossing_hysteresis = 0.05;
};

struct HpaResult {
  Assignment assignment;
  // The graph layers Zq HPA processed (for introspection and tests).
  std::vector<std::vector<graph::VertexId>> graph_layers;
  double total_latency_seconds = 0;  // Θ of the returned assignment
};

HpaResult hpa(const PartitionProblem& problem, const HpaOptions& options = {});

// Candidate tiers of `v` given its predecessors' current assignment (Prop. 1).
std::vector<Tier> potential_tiers(const PartitionProblem& problem, const Assignment& assignment,
                                  graph::VertexId v);

// Recomputes the optimal tiers of v's local neighbourhood after its vertex
// weights or the link weights changed, leaving the rest of the assignment
// untouched. Returns the vertices whose tier changed.
std::vector<graph::VertexId> hpa_local_update(const PartitionProblem& problem,
                                              Assignment& assignment, graph::VertexId v,
                                              const HpaOptions& options = {});

// Exhaustive minimiser of Θ subject to Prop. 1 (O(3^n); small graphs only).
// Used by tests and the ablation bench as the optimality reference.
Assignment brute_force_optimal(const PartitionProblem& problem);

}  // namespace d3::core
