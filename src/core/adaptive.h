// Run-time adaptation (paper §III-E, last paragraph): resource changes and
// network dynamics alter per-layer times and transfer delays; HPA accommodates
// them by *local* updates instead of re-partitioning the whole DNN, gated by
// hysteresis thresholds so the partition is not recomputed on every jitter.
#pragma once

#include <cstddef>
#include <vector>

#include "core/hpa.h"
#include "core/partition.h"

namespace d3::core {

struct AdaptiveOptions {
  // Relative per-vertex processing-time change below which updates are ignored.
  double time_threshold = 0.15;
  // Relative inter-tier bandwidth change below which updates are ignored.
  double bandwidth_threshold = 0.15;
  HpaOptions hpa;
};

class AdaptiveRepartitioner {
 public:
  using Options = AdaptiveOptions;

  AdaptiveRepartitioner(PartitionProblem problem, Options options = {});

  const PartitionProblem& problem() const { return problem_; }
  const Assignment& assignment() const { return assignment_; }
  double current_latency() const { return total_latency(problem_, assignment_); }

  // New measured processing times for vertex `v`. Below threshold: absorbed
  // silently. Above: the problem is updated and HPA adjusts v's neighbourhood
  // locally (hpa_local_update). Returns the vertices whose tier changed.
  std::vector<graph::VertexId> update_vertex_time(graph::VertexId v, const TierTimes& times);

  // New network condition. Below threshold on every inter-tier rate: absorbed.
  // Above: link weights are updated; since every link weight changed at once,
  // this triggers a full HPA re-run (the one situation local updates cannot
  // bound). Returns the vertices whose tier changed.
  std::vector<graph::VertexId> update_condition(const net::NetworkCondition& condition);

  std::size_t local_updates() const { return local_updates_; }
  std::size_t full_repartitions() const { return full_repartitions_; }
  std::size_t absorbed_updates() const { return absorbed_updates_; }

 private:
  PartitionProblem problem_;
  Options options_;
  Assignment assignment_;
  std::size_t local_updates_ = 0;
  std::size_t full_repartitions_ = 0;
  std::size_t absorbed_updates_ = 0;
};

}  // namespace d3::core
