// Vertical Separation Module (paper §III-F, Algorithm 2).
//
// Given a sequence of correlated convolutional layers c1..ck assigned to the
// edge tier, VSM grids the *output* feature map of ck into A x B non-overlapping
// tiles (the tiles of the virtual layer c_{k+1}) and back-propagates each tile's
// coordinates through the stack with the reverse tile calculation (RTC):
//
//   padded coords  (Eq. 4):  α̂ = S·α,  β̂ = S·(β−1) + F        (β exclusive)
//   remove padding (Eq. 5):  α  = max(0, α̂ − P)
//                            β  = W      if β̂ = W + 2P
//                                 min(W, max(0, β̂ − P)) otherwise
//
// The min(W, ·) clamp extends the paper's Eq. (5), which only special-cases
// tiles spanning the full padded extent; partial border tiles with P > 1 need
// the clamp for exactness (caught by vsm_property_test without it).
//
// The resulting fused tile stack contains, per tile, the exact input region of
// every layer — including the halo that overlapping receptive fields require —
// so every edge node can compute its output tile *bit-exactly* without talking
// to its neighbours. Pooling and elementwise layers between convolutions are
// fused the same way (elementwise regions pass through unchanged).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dnn/network.h"
#include "exec/ops.h"
#include "profile/node_spec.h"

namespace d3::core {

// One spatial dimension of RTC: maps the tile's output interval [begin, end)
// to the input interval it requires, for a window of `kernel`/`stride`/`pad`
// over a full input extent `full`. Exposed separately for direct unit testing
// against Eqs. (4)-(5).
struct Interval {
  int begin = 0;
  int end = 0;  // exclusive
};
Interval rtc_dimension(Interval out, int kernel, int stride, int pad, int full);

struct FusedTilePlan {
  std::vector<dnn::LayerId> stack;  // c1..ck, a tileable chain inside the network
  int grid_rows = 0;                // A
  int grid_cols = 0;                // B

  struct TilePlan {
    // input_regions[j]: region of layer stack[j]'s input feature map this tile
    // needs (with halo). output_region: this tile's slice of ck's output.
    std::vector<exec::Region> input_regions;
    exec::Region output_region;
  };
  std::vector<TilePlan> tiles;  // row-major (a * grid_cols + b)

  // Full-feature-map geometry, for execution and cost accounting.
  std::vector<dnn::Shape> input_shapes;  // per stack layer
  dnn::Shape output_shape;               // ck's full output

  std::size_t num_tiles() const { return tiles.size(); }
};

// Builds the fused tile plan (Algorithm 2). Requirements: `stack` is non-empty,
// each layer is VSM-tileable (conv/pool/relu/bn), consecutive layers form a
// chain (stack[j+1]'s single input is stack[j]), and the A x B grid fits the
// output extent. Throws std::invalid_argument otherwise.
FusedTilePlan make_fused_tile_plan(const dnn::Network& net,
                                   std::span<const dnn::LayerId> stack, int grid_rows,
                                   int grid_cols);

// Longest contiguous run of tileable layers within `layer_ids` (network order),
// the candidate stack D3 hands to VSM after HPA assigns layers to the edge.
std::vector<dnn::LayerId> longest_tileable_run(const dnn::Network& net,
                                               std::span<const dnn::LayerId> layer_ids);

// FLOPs one tile executes across the stack (halo overlap makes the sum across
// tiles exceed the serial stack FLOPs; Fig. 12's "computational redundancy").
std::int64_t tile_flops(const dnn::Network& net, const FusedTilePlan& plan,
                        std::size_t tile_index);

// Σ tile FLOPs / serial stack FLOPs (>= 1; 1 means no redundancy).
double redundancy_factor(const dnn::Network& net, const FusedTilePlan& plan);

// Expected wall-clock of the stack executed serially on `node`, and in parallel
// with one tile per node (the max over tiles; intra-tier transfer is
// infinitesimal per §III-A).
double serial_stack_latency(const dnn::Network& net, const FusedTilePlan& plan,
                            const profile::NodeSpec& node);
double parallel_stack_latency(const dnn::Network& net, const FusedTilePlan& plan,
                              const profile::NodeSpec& node);

}  // namespace d3::core
