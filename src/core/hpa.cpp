#include "core/hpa.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "graph/layering.h"

namespace d3::core {

namespace {

// max{lh1..lhm} under the order d ≻ e ≻ c: the most device-ward predecessor tier.
Tier most_deviceward_pred(const PartitionProblem& problem, const Assignment& assignment,
                          graph::VertexId v) {
  Tier m = Tier::kCloud;
  for (const graph::VertexId p : problem.dag.predecessors(v))
    if (before(assignment.tier[p], m)) m = assignment.tier[p];
  return m;
}

// t_i^{li} + Σ_{vh ∈ Vp_i} t_{hi}^{[lh, li]}  (Eq. (2) cost for one candidate tier).
double local_cost(const PartitionProblem& problem, const Assignment& assignment,
                  graph::VertexId v, Tier li) {
  double cost = problem.vertex_time[v].at(li);
  for (const graph::VertexId p : problem.dag.predecessors(v))
    cost += problem.transfer_seconds(problem.out_bytes[p], assignment.tier[p], li);
  return cost;
}

// Downstream cost-to-go table. This generalises the paper's Table-I lookahead:
// instead of enumerating placements of (vi, largest direct successor), a
// candidate tier li is charged the best-case cost of completing *everything*
// downstream, computed by a backward dynamic program over the topological
// order:
//
//   F[k][l] = min over tiers l' ⪰ l of
//             transfer(cut_bytes[k], l -> l') + t(order[k], l') + F[k+1][l']
//
// i.e. the remaining vertices run at monotonically cloud-ward tiers, paying
// each crossing with *every tensor alive across that point of the topological
// order* (for each vertex u, its output is live from its position until its
// last consumer — the exact bytes a cut between positions k-1 and k ships, and
// exactly the per-edge tensor for chain networks). For chains this DP is the
// exact three-tier split cost; for DAGs the topological suffix stands in for
// the descendant set. The paper's one-successor horizon degenerates on deep
// modular networks — on Inception-v4 every stem layer individually looks
// cheaper on the device than its input transfer, so the partition never escapes
// the device even though the accumulated device time dwarfs one uplink crossing
// (see DESIGN.md).
struct DownstreamCosts {
  std::vector<std::size_t> position;        // topo position per vertex
  std::array<std::vector<double>, 3> togo;  // togo[l][k] = F[k][l]

  static DownstreamCosts build(const PartitionProblem& problem) {
    DownstreamCosts d;
    const std::vector<graph::VertexId> order = problem.dag.topological_order();
    const std::size_t n = order.size();
    d.position.resize(n);
    for (std::size_t k = 0; k < n; ++k) d.position[order[k]] = k;

    // cut_bytes[k]: bytes of tensors alive across a cut between positions k-1
    // and k. Vertex u's output lives over (pos(u), max pos of its consumers];
    // accumulate with a difference array.
    std::vector<double> diff(n + 2, 0.0);
    for (graph::VertexId u = 0; u < n; ++u) {
      std::size_t last = d.position[u];
      for (const graph::VertexId s : problem.dag.successors(u))
        last = std::max(last, d.position[s]);
      if (last > d.position[u]) {
        diff[d.position[u] + 1] += static_cast<double>(problem.out_bytes[u]);
        diff[last + 1] -= static_cast<double>(problem.out_bytes[u]);
      }
    }
    std::vector<double> cut_bytes(n + 1, 0.0);
    for (std::size_t k = 1; k <= n; ++k) cut_bytes[k] = cut_bytes[k - 1] + diff[k];

    for (auto& v : d.togo) v.assign(n + 1, 0.0);
    for (std::size_t k = n; k-- > 1;) {
      const graph::VertexId v = order[k];
      for (const Tier l : kAllTiers) {
        double best = std::numeric_limits<double>::infinity();
        for (const Tier l2 : kAllTiers) {
          if (before(l2, l)) continue;  // Prop. 1: no device-ward moves downstream
          const double crossing =
              l2 == l ? 0.0
                      : problem.transfer_seconds(
                            static_cast<std::int64_t>(cut_bytes[k]), l, l2);
          best = std::min(best, crossing + problem.vertex_time[v].at(l2) +
                                    d.togo[static_cast<std::size_t>(index(l2))][k + 1]);
        }
        d.togo[static_cast<std::size_t>(index(l))][k] = best;
      }
    }
    return d;
  }

  // Best-case cost of completing every vertex after v when v's output is at li.
  double future(graph::VertexId v, Tier li) const {
    return togo[static_cast<std::size_t>(index(li))][position[v] + 1];
  }
};

// Optimal-tier selection for one vertex whose predecessors are already placed.
Tier choose_tier(const PartitionProblem& problem, const Assignment& assignment,
                 graph::VertexId v, const HpaOptions& options, const DownstreamCosts& costs) {
  const std::vector<Tier> candidates = potential_tiers(problem, assignment, v);
  if (candidates.size() == 1) return candidates.front();  // Γi = {c} fast path

  // The most device-ward feasible tier keeps the data where it already is;
  // moving cloud-ward must beat it by the hysteresis margin (the lookahead is
  // an estimate — without the margin, near-ties cut DAG modules in half and
  // every severed branch pays its own uplink crossing).
  const Tier stay_tier = candidates.front();
  double stay_cost = 0;
  Tier best_tier = stay_tier;
  double best_cost = std::numeric_limits<double>::infinity();
  for (const Tier li : candidates) {
    double cost = local_cost(problem, assignment, v, li);
    if (options.io_heuristic) cost += costs.future(v, li);
    if (li == stay_tier) stay_cost = cost;
    if (cost < best_cost) {
      best_cost = cost;
      best_tier = li;
    }
  }
  if (best_tier != stay_tier && best_cost > (1.0 - options.crossing_hysteresis) * stay_cost)
    return stay_tier;
  return best_tier;
}

// Prop. 2 update over one graph layer: pull SIS vertices that sit strictly
// device-ward of their sibling forward to the sibling's tier (their inputs are
// already there, so the move costs no extra transmission).
void sis_update(const PartitionProblem& problem, Assignment& assignment,
                const std::vector<graph::VertexId>& layer) {
  for (const graph::VertexId vi : layer) {
    for (const graph::VertexId vj : graph::sis_vertices(problem.dag, vi, layer)) {
      if (before(assignment.tier[vj], assignment.tier[vi]))
        assignment.tier[vj] = assignment.tier[vi];
    }
  }
}

}  // namespace

std::vector<Tier> potential_tiers(const PartitionProblem& problem, const Assignment& assignment,
                                  graph::VertexId v) {
  if (v == 0) return {Tier::kDevice};
  if (problem.dag.predecessors(v).empty()) return {Tier::kDevice, Tier::kEdge, Tier::kCloud};
  const Tier bound = most_deviceward_pred(problem, assignment, v);
  std::vector<Tier> out;
  for (const Tier t : kAllTiers)
    if (before_or_same(bound, t)) out.push_back(t);
  return out;
}

HpaResult hpa(const PartitionProblem& problem, const HpaOptions& options) {
  problem.validate();
  HpaResult result;
  result.graph_layers = graph::graph_layers(problem.dag, 0);
  result.assignment.tier.assign(problem.size(), Tier::kCloud);
  result.assignment.tier[0] = Tier::kDevice;  // lopt_0 = d
  const DownstreamCosts costs = DownstreamCosts::build(problem);

  bool first = true;
  for (const auto& layer : result.graph_layers) {
    if (first) {  // Z0 = {v0}
      first = false;
      continue;
    }
    for (const graph::VertexId v : layer)
      result.assignment.tier[v] = choose_tier(problem, result.assignment, v, options, costs);
    if (options.sis_update) sis_update(problem, result.assignment, layer);
  }

  // Plan validation: the offline partition framework never deploys a heuristic
  // split that loses to a trivial single-tier plan under its own cost model.
  result.total_latency_seconds = total_latency(problem, result.assignment);
  for (const Tier tier : kAllTiers) {
    const Assignment uniform = uniform_assignment(problem, tier);
    const double theta = total_latency(problem, uniform);
    if (theta < result.total_latency_seconds) {
      result.total_latency_seconds = theta;
      result.assignment = uniform;
    }
  }
  return result;
}

std::vector<graph::VertexId> hpa_local_update(const PartitionProblem& problem,
                                              Assignment& assignment, graph::VertexId v,
                                              const HpaOptions& options) {
  if (v == 0 || v >= problem.size())
    throw std::invalid_argument("hpa_local_update: bad vertex");

  const std::vector<int> delta = graph::longest_distance(problem.dag, 0);
  const auto layers = graph::graph_layers(problem.dag, 0);
  const auto layer_of = [&](graph::VertexId u) -> const std::vector<graph::VertexId>& {
    return layers[static_cast<std::size_t>(delta[u])];
  };

  const DownstreamCosts costs = DownstreamCosts::build(problem);
  std::vector<graph::VertexId> changed;
  const auto reassign = [&](graph::VertexId u) {
    const Tier fresh = choose_tier(problem, assignment, u, options, costs);
    if (fresh != assignment.tier[u]) {
      assignment.tier[u] = fresh;
      changed.push_back(u);
    }
  };

  // The paper's neighbourhood: v, its SIS vertices, its direct successors, and
  // the SIS vertices of those successors.
  reassign(v);
  for (const graph::VertexId s : graph::sis_vertices(problem.dag, v, layer_of(v))) reassign(s);
  for (const graph::VertexId succ : problem.dag.successors(v)) {
    reassign(succ);
    for (const graph::VertexId s : graph::sis_vertices(problem.dag, succ, layer_of(succ)))
      reassign(s);
  }

  // Repair pass (extension, see DESIGN.md): cloud-ward moves can tighten Prop-1
  // bounds further downstream; sweep in topological order and re-place any
  // vertex left infeasible, so the assignment invariant always holds.
  for (const graph::VertexId u : problem.dag.topological_order()) {
    if (u == 0 || problem.dag.predecessors(u).empty()) continue;
    const Tier bound = most_deviceward_pred(problem, assignment, u);
    if (before(assignment.tier[u], bound)) reassign(u);
  }
  return changed;
}

Assignment brute_force_optimal(const PartitionProblem& problem) {
  problem.validate();
  const std::size_t n = problem.size();
  if (n > 14) throw std::invalid_argument("brute_force_optimal: graph too large");

  Assignment best;
  double best_theta = std::numeric_limits<double>::infinity();
  Assignment current;
  current.tier.assign(n, Tier::kDevice);

  std::size_t total = 1;
  for (std::size_t i = 1; i < n; ++i) total *= 3;
  for (std::size_t code = 0; code < total; ++code) {
    std::size_t c = code;
    for (std::size_t i = 1; i < n; ++i) {
      current.tier[i] = static_cast<Tier>(c % 3);
      c /= 3;
    }
    if (!respects_precedence(problem, current)) continue;
    const double theta = total_latency(problem, current);
    if (theta < best_theta) {
      best_theta = theta;
      best = current;
    }
  }
  if (best.tier.empty()) throw std::logic_error("brute_force_optimal: no feasible assignment");
  return best;
}

}  // namespace d3::core
