// Deployment-plan serialisation: the artefact the offline partition framework
// ships to the online execution nodes (paper §IV stores partial DNNs as ONNX;
// here every node holds the shared model, so the wire format carries only the
// assignment and the VSM grid — each node slices its own partition).
//
// Line-oriented, human-readable, versioned:
//
//   d3-plan v1
//   model <name>
//   tiers d d e e e c c
//   vsm 2x2 3,4,5,6          (optional: grid rows x cols, stack layer ids)
//
// parse_plan() validates against the network it is applied to and rebuilds the
// fused tile plan geometry locally (it is a pure function of the model), so a
// corrupted or mismatched plan fails loudly instead of mis-executing.
//
// The binary form (serialize_plan_binary / parse_plan_binary) carries the same
// content over the rpc wire format — it is what the coordinator ships to
// d3_node worker processes at configure time. Both parsers are strict: any
// malformed, truncated or trailing input throws instead of yielding a
// partially-populated plan.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/partition.h"
#include "core/vsm.h"

namespace d3::core {

struct SerializablePlan {
  std::string model_name;
  Assignment assignment;
  std::optional<FusedTilePlan> vsm;
};

std::string serialize_plan(const SerializablePlan& plan);

// Throws std::invalid_argument on malformed input, version mismatch, model-name
// mismatch, assignment/network size mismatch, or an invalid VSM stack.
SerializablePlan parse_plan(const std::string& text, const dnn::Network& net);

// Fixed-endianness binary form of the same plan, framed with the rpc wire
// magic/version. parse_plan_binary applies exactly the validation parse_plan
// does (plus wire-level truncation/overflow checks via rpc::WireError, which
// derives from std::runtime_error).
std::vector<std::uint8_t> serialize_plan_binary(const SerializablePlan& plan);
SerializablePlan parse_plan_binary(std::span<const std::uint8_t> bytes,
                                   const dnn::Network& net);

}  // namespace d3::core
