#include "core/adaptive.h"

#include <cmath>
#include <stdexcept>

namespace d3::core {

namespace {

bool within(double old_value, double new_value, double threshold) {
  if (old_value == 0.0) return new_value == 0.0;
  return std::abs(new_value - old_value) / std::abs(old_value) <= threshold;
}

}  // namespace

AdaptiveRepartitioner::AdaptiveRepartitioner(PartitionProblem problem, Options options)
    : problem_(std::move(problem)), options_(options) {
  problem_.validate();
  assignment_ = hpa(problem_, options_.hpa).assignment;
}

std::vector<graph::VertexId> AdaptiveRepartitioner::update_vertex_time(graph::VertexId v,
                                                                       const TierTimes& times) {
  if (v == 0 || v >= problem_.size())
    throw std::invalid_argument("update_vertex_time: bad vertex");
  bool significant = false;
  for (const Tier tier : kAllTiers)
    significant |= !within(problem_.vertex_time[v].at(tier), times.at(tier),
                           options_.time_threshold);
  if (!significant) {
    ++absorbed_updates_;
    return {};
  }
  problem_.vertex_time[v] = times;
  ++local_updates_;
  return hpa_local_update(problem_, assignment_, v, options_.hpa);
}

std::vector<graph::VertexId> AdaptiveRepartitioner::update_condition(
    const net::NetworkCondition& condition) {
  const bool significant =
      !within(problem_.condition.device_edge_mbps, condition.device_edge_mbps,
              options_.bandwidth_threshold) ||
      !within(problem_.condition.edge_cloud_mbps, condition.edge_cloud_mbps,
              options_.bandwidth_threshold) ||
      !within(problem_.condition.device_cloud_mbps, condition.device_cloud_mbps,
              options_.bandwidth_threshold);
  if (!significant) {
    ++absorbed_updates_;
    return {};
  }
  problem_.condition = condition;
  ++full_repartitions_;
  const Assignment fresh = hpa(problem_, options_.hpa).assignment;
  std::vector<graph::VertexId> changed;
  for (graph::VertexId v = 0; v < problem_.size(); ++v)
    if (fresh.tier[v] != assignment_.tier[v]) changed.push_back(v);
  assignment_ = fresh;
  return changed;
}

}  // namespace d3::core
