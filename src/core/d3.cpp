#include "core/d3.h"

#include <algorithm>
#include <cmath>

namespace d3::core {

std::size_t DeploymentPlan::vertices_on(Tier tier) const {
  return static_cast<std::size_t>(
      std::count(assignment.tier.begin() + 1, assignment.tier.end(), tier));
}

std::pair<int, int> choose_tile_grid(int nodes, int out_h, int out_w) {
  for (int n = std::max(1, nodes); n >= 1; --n) {
    // Most-square factorisation a x b = n with a <= out_h, b <= out_w.
    for (int a = static_cast<int>(std::sqrt(static_cast<double>(n))); a >= 1; --a) {
      if (n % a != 0) continue;
      const int b = n / a;
      if (a <= out_h && b <= out_w) return {a, b};
      if (b <= out_h && a <= out_w) return {b, a};
    }
  }
  return {1, 1};
}

D3System::D3System(const dnn::Network& net, const profile::TierNodes& nodes,
                   const D3Options& options)
    : net_(net),
      nodes_(nodes),
      options_(options),
      estimators_(profile::Profiler::profile_tiers(nodes, options.profiler)) {}

DeploymentPlan D3System::plan(const net::NetworkCondition& condition) const {
  DeploymentPlan plan;
  plan.problem = make_problem(net_, estimators_, condition);
  const HpaResult result = hpa(plan.problem, options_.hpa);
  plan.assignment = result.assignment;
  plan.estimated_total_latency = result.total_latency_seconds;

  if (options_.edge_nodes > 1) {
    // Collect the layers HPA placed on the edge (network order) and tile the
    // heaviest contiguous convolutional run across the available edge nodes.
    std::vector<dnn::LayerId> edge_layers;
    for (dnn::LayerId id = 0; id < net_.num_layers(); ++id)
      if (plan.assignment.tier[dnn::Network::vertex_of(id)] == Tier::kEdge)
        edge_layers.push_back(id);
    const std::vector<dnn::LayerId> stack = longest_tileable_run(net_, edge_layers);
    if (!stack.empty()) {
      const dnn::Shape out = net_.layer(stack.back()).output_shape;
      const auto [rows, cols] = choose_tile_grid(options_.edge_nodes, out.h, out.w);
      if (rows * cols > 1)
        plan.vsm = make_fused_tile_plan(net_, stack, rows, cols);
    }
  }
  return plan;
}

}  // namespace d3::core
