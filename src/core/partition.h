// The horizontal-partition problem (§III-C/E): the DAG G=(V,L) with vertex
// weights Tvi (per-tier processing times) and link weights (transfer delays
// derived from output sizes and inter-tier bandwidth), plus the assignment
// representation and the Θ objective HPA minimises.
#pragma once

#include <cstdint>
#include <vector>

#include "core/tier.h"
#include "dnn/network.h"
#include "graph/dag.h"
#include "net/conditions.h"
#include "profile/node_spec.h"
#include "profile/regression.h"

namespace d3::core {

struct PartitionProblem {
  graph::Dag dag;  // vertex 0 = virtual input v0
  // Per-vertex processing times; vertex_time[0] is all-zero (v0 is virtual).
  std::vector<TierTimes> vertex_time;
  // lambda_out per vertex: bytes produced (out_bytes[0] = raw input size).
  std::vector<std::int64_t> out_bytes;
  // lambda_in per vertex: bytes consumed (0 for v0).
  std::vector<std::int64_t> in_bytes;
  net::NetworkCondition condition;

  std::size_t size() const { return dag.size(); }

  // Uplink bandwidth between two tiers (Mbps); same-tier is infinite.
  double bandwidth_mbps(Tier a, Tier b) const;

  // Transfer delay of `bytes` between tiers a and b; 0 when a == b (§III-C).
  double transfer_seconds(std::int64_t bytes, Tier a, Tier b) const;

  // Throws std::invalid_argument if the vectors/dag are inconsistent.
  void validate() const;
};

// A tier per vertex. assignment[0] (v0) is always kDevice.
struct Assignment {
  std::vector<Tier> tier;

  Tier at(graph::VertexId v) const { return tier.at(v); }
};

// The paper's objective Θ: sum of per-vertex processing times at their assigned
// tiers plus per-link transfer delays.
double total_latency(const PartitionProblem& problem, const Assignment& assignment);

// Prop. 1 feasibility: no vertex sits strictly device-ward of its most
// device-ward direct predecessor, and v0 is on the device.
bool respects_precedence(const PartitionProblem& problem, const Assignment& assignment);

// Per-frame traffic crossing tier boundaries. A vertex's output is shipped once
// per destination tier even when several consumers live there (the online
// engine multicasts within a node).
struct BoundaryTraffic {
  std::int64_t device_edge_bytes = 0;
  std::int64_t edge_cloud_bytes = 0;
  std::int64_t device_cloud_bytes = 0;

  // Traffic entering the cloud over the backbone (the Fig. 13 metric).
  std::int64_t to_cloud_bytes() const { return edge_cloud_bytes + device_cloud_bytes; }
};

BoundaryTraffic boundary_traffic(const PartitionProblem& problem, const Assignment& assignment);

// Per-frame compute seconds accumulated on each tier.
struct TierLoad {
  std::array<double, 3> seconds{0.0, 0.0, 0.0};
  double at(Tier t) const { return seconds[static_cast<std::size_t>(index(t))]; }
};

TierLoad tier_load(const PartitionProblem& problem, const Assignment& assignment);

// Single-tier assignments (device-/edge-/cloud-only baselines keep v0 on the
// device and every layer on `tier`).
Assignment uniform_assignment(const PartitionProblem& problem, Tier tier);

// Builds the partition problem for a network: vertex weights from a latency
// source and link weights from activation sizes + `condition`.
// `estimators` are indexed by Tier (see profile::Profiler::profile_tiers).
PartitionProblem make_problem(const dnn::Network& net,
                              const std::array<profile::LatencyEstimator, 3>& estimators,
                              const net::NetworkCondition& condition);

// Ground-truth variant used by the simulator: exact HardwareModel latencies.
PartitionProblem make_problem_exact(const dnn::Network& net, const profile::TierNodes& nodes,
                                    const net::NetworkCondition& condition);

}  // namespace d3::core
