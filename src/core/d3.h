// The D3 system facade (Fig. 2): profiler -> regression estimators -> offline
// partition framework (HPA + VSM) -> deployment plan for the online execution
// engine. This is the public entry point a user of the library calls.
#pragma once

#include <optional>

#include "core/hpa.h"
#include "core/partition.h"
#include "core/vsm.h"
#include "net/conditions.h"
#include "profile/profiler.h"

namespace d3::core {

struct D3Options {
  HpaOptions hpa;
  // Edge nodes available for VSM fan-out. 1 disables VSM (plain HPA).
  int edge_nodes = 1;
  profile::Profiler::Options profiler;
};

struct DeploymentPlan {
  Assignment assignment;
  // The estimated problem the decision was made on (regression-based weights).
  PartitionProblem problem;
  // Present when VSM applies: >= 2 edge nodes and a tileable conv stack on the
  // edge whose output grid fits the node count.
  std::optional<FusedTilePlan> vsm;
  double estimated_total_latency = 0;  // Θ under the estimated weights

  std::size_t vertices_on(Tier tier) const;
};

// Near-square A x B factorisation of `nodes` that fits an out_h x out_w grid;
// falls back to fewer nodes when the extent is too small. Returns {1,1} for 1.
std::pair<int, int> choose_tile_grid(int nodes, int out_h, int out_w);

class D3System {
 public:
  // Profiles the three tiers of `nodes` once (regression fitting) at
  // construction; plan() is then cheap and can be called per condition change.
  D3System(const dnn::Network& net, const profile::TierNodes& nodes,
           const D3Options& options = {});

  DeploymentPlan plan(const net::NetworkCondition& condition) const;

  const std::array<profile::LatencyEstimator, 3>& estimators() const { return estimators_; }

 private:
  const dnn::Network& net_;
  profile::TierNodes nodes_;
  D3Options options_;
  std::array<profile::LatencyEstimator, 3> estimators_;
};

}  // namespace d3::core
