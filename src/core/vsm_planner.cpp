#include "core/vsm_planner.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/units.h"

namespace d3::core {

std::int64_t stack_scatter_bytes(const FusedTilePlan& plan) {
  const int channels = plan.input_shapes.front().c;
  std::int64_t total = 0;
  for (const FusedTilePlan::TilePlan& tile : plan.tiles) {
    const exec::Region& r = tile.input_regions.front();
    total += static_cast<std::int64_t>(r.width()) * r.height() * channels * 4;
  }
  return total;
}

std::int64_t stack_gather_bytes(const FusedTilePlan& plan) {
  // Output tiles are disjoint and exhaustive: exactly the output tensor.
  return plan.output_shape.bytes();
}

double stack_sync_seconds(const FusedTilePlan& plan, double lan_mbps) {
  if (lan_mbps <= 0) return 0.0;  // the paper's infinitesimal intra-tier model
  return util::transfer_seconds(
      static_cast<double>(stack_scatter_bytes(plan) + stack_gather_bytes(plan)), lan_mbps);
}

namespace {

EdgeStackPlan make_plan(const dnn::Network& net, std::span<const dnn::LayerId> run,
                        const std::vector<std::pair<std::size_t, std::size_t>>& segments,
                        int rows, int cols, const profile::NodeSpec& node, double lan_mbps) {
  EdgeStackPlan result;
  for (const auto& [begin, end] : segments) {
    FusedTilePlan stack =
        make_fused_tile_plan(net, run.subspan(begin, end - begin), rows, cols);
    result.compute_seconds += parallel_stack_latency(net, stack, node);
    result.sync_seconds += stack_sync_seconds(stack, lan_mbps);
    result.stacks.push_back(std::move(stack));
  }
  return result;
}

}  // namespace

EdgeStackPlan plan_edge_stacks(const dnn::Network& net, std::span<const dnn::LayerId> run,
                               int rows, int cols, const profile::NodeSpec& node,
                               double lan_mbps) {
  if (run.empty()) throw std::invalid_argument("plan_edge_stacks: empty run");

  const std::size_t n = run.size();
  // cost[j][i]: time of segment [j, i) as one fused stack (compute + sync);
  // infinity when the grid does not fit the segment's output extent.
  std::vector<std::vector<double>> cost(n, std::vector<double>(n + 1, 0.0));
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = j + 1; i <= n; ++i) {
      try {
        const FusedTilePlan plan = make_fused_tile_plan(net, run.subspan(j, i - j), rows, cols);
        cost[j][i] = parallel_stack_latency(net, plan, node) + stack_sync_seconds(plan, lan_mbps);
      } catch (const std::invalid_argument&) {
        cost[j][i] = std::numeric_limits<double>::infinity();
      }
    }
  }

  // best[i]: minimal total time for the prefix [0, i); split[i]: chosen j.
  std::vector<double> best(n + 1, std::numeric_limits<double>::infinity());
  std::vector<std::size_t> split(n + 1, 0);
  best[0] = 0.0;
  for (std::size_t i = 1; i <= n; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      const double candidate = best[j] + cost[j][i];
      if (candidate < best[i]) {
        best[i] = candidate;
        split[i] = j;
      }
    }
  }
  if (!std::isfinite(best[n]))
    throw std::invalid_argument("plan_edge_stacks: grid does not fit any segmentation");

  std::vector<std::pair<std::size_t, std::size_t>> segments;
  for (std::size_t i = n; i > 0; i = split[i]) segments.emplace_back(split[i], i);
  std::reverse(segments.begin(), segments.end());
  return make_plan(net, run, segments, rows, cols, node, lan_mbps);
}

EdgeStackPlan single_stack_plan(const dnn::Network& net, std::span<const dnn::LayerId> run,
                                int rows, int cols, const profile::NodeSpec& node,
                                double lan_mbps) {
  if (run.empty()) throw std::invalid_argument("single_stack_plan: empty run");
  return make_plan(net, run, {{0, run.size()}}, rows, cols, node, lan_mbps);
}

}  // namespace d3::core
