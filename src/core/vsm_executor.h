// Lossless tiled execution of a fused tile plan (the per-edge-node compute of
// Fig. 8): each tile's stack runs independently from its own input crop, then
// the output tiles are gathered into the full feature map.
//
// Because every tile op is the same region-aware kernel the reference executor
// uses (exec/ops.h), the gathered result equals the serial execution *exactly*
// (bitwise float equality) — the paper's "no precision loss" claim, which the
// test suite asserts.
#pragma once

#include <functional>

#include "core/vsm.h"
#include "dnn/tensor.h"
#include "exec/weights.h"

namespace d3::core {

// Parallelism hook for tile execution: invoked as parallel_for(n, body) and
// expected to run body(0..n-1) (in any order, possibly concurrently) and
// return only when all calls finished. runtime::ThreadPool::parallel_for
// satisfies this contract; an empty function means a serial loop. Keeping the
// hook a plain std::function lets core stay independent of the runtime layer.
using TileParallelFor =
    std::function<void(std::size_t, const std::function<void(std::size_t)>&)>;

// Extracts the input crop one edge node needs for `tile_index` (what the
// online engine would scatter to that node).
exec::Tile extract_tile_input(const dnn::Tensor& stack_input, const FusedTilePlan& plan,
                              std::size_t tile_index);

// Runs the whole stack for one tile, returning its slice of ck's output.
exec::Tile run_single_tile(const dnn::Network& net, const exec::WeightStore& weights,
                           const exec::Tile& input, const FusedTilePlan& plan,
                           std::size_t tile_index);

// Scatter + per-tile execution + gather: the full output feature map of ck.
// `stack_input` must match the stack's first-layer input shape. When
// `parallel_for` is non-empty the per-tile stacks run under it (each tile
// writes only its own slot, so any schedule is race-free); the gathered result
// is bitwise-identical either way because assembly is always in tile order.
dnn::Tensor run_fused_tiles(const dnn::Network& net, const exec::WeightStore& weights,
                            const dnn::Tensor& stack_input, const FusedTilePlan& plan,
                            const TileParallelFor& parallel_for = {});

// Serial reference: the same stack run on the whole input (no tiling).
dnn::Tensor run_stack_serial(const dnn::Network& net, const exec::WeightStore& weights,
                             const dnn::Tensor& stack_input,
                             std::span<const dnn::LayerId> stack);

}  // namespace d3::core
