// Lossless tiled execution of a fused tile plan (the per-edge-node compute of
// Fig. 8): each tile's stack runs independently from its own input crop, then
// the output tiles are gathered into the full feature map.
//
// Because every tile op is the same region-aware kernel the reference executor
// uses (exec/ops.h), the gathered result equals the serial execution *exactly*
// (bitwise float equality) — the paper's "no precision loss" claim, which the
// test suite asserts.
#pragma once

#include "core/vsm.h"
#include "dnn/tensor.h"
#include "exec/weights.h"

namespace d3::core {

// Extracts the input crop one edge node needs for `tile_index` (what the
// online engine would scatter to that node).
exec::Tile extract_tile_input(const dnn::Tensor& stack_input, const FusedTilePlan& plan,
                              std::size_t tile_index);

// Runs the whole stack for one tile, returning its slice of ck's output.
exec::Tile run_single_tile(const dnn::Network& net, const exec::WeightStore& weights,
                           const exec::Tile& input, const FusedTilePlan& plan,
                           std::size_t tile_index);

// Scatter + per-tile execution + gather: the full output feature map of ck.
// `stack_input` must match the stack's first-layer input shape.
dnn::Tensor run_fused_tiles(const dnn::Network& net, const exec::WeightStore& weights,
                            const dnn::Tensor& stack_input, const FusedTilePlan& plan);

// Serial reference: the same stack run on the whole input (no tiling).
dnn::Tensor run_stack_serial(const dnn::Network& net, const exec::WeightStore& weights,
                             const dnn::Tensor& stack_input,
                             std::span<const dnn::LayerId> stack);

}  // namespace d3::core
