#include "exec/weights.h"

#include <cmath>
#include <optional>
#include <stdexcept>

#include "core/plan_io.h"

namespace d3::exec {

WeightStore WeightStore::random_for(const dnn::Network& net, std::uint64_t seed) {
  util::Rng rng(seed);
  WeightStore store;
  store.per_layer_.resize(net.num_layers());
  for (dnn::LayerId id = 0; id < net.num_layers(); ++id) {
    const dnn::NetworkLayer& layer = net.layer(id);
    const auto in_shapes = net.input_shapes(id);
    LayerWeights& w = store.per_layer_[id];
    switch (layer.spec.kind) {
      case dnn::LayerKind::kConv: {
        const int in_c = in_shapes[0].c;
        const int taps = layer.spec.window.kernel_w * layer.spec.window.kernel_h * in_c;
        const double scale = std::sqrt(2.0 / taps);
        w.weights.resize(static_cast<std::size_t>(layer.spec.out_channels) * taps);
        for (auto& v : w.weights) v = static_cast<float>(rng.normal(0.0, scale));
        w.bias.resize(static_cast<std::size_t>(layer.spec.out_channels));
        for (auto& v : w.bias) v = static_cast<float>(rng.uniform(-0.1, 0.1));
        break;
      }
      case dnn::LayerKind::kFullyConnected: {
        const std::int64_t in_n = in_shapes[0].elements();
        const double scale = std::sqrt(2.0 / static_cast<double>(in_n));
        w.weights.resize(static_cast<std::size_t>(layer.spec.out_features * in_n));
        for (auto& v : w.weights) v = static_cast<float>(rng.normal(0.0, scale));
        w.bias.resize(static_cast<std::size_t>(layer.spec.out_features));
        for (auto& v : w.bias) v = static_cast<float>(rng.uniform(-0.1, 0.1));
        break;
      }
      case dnn::LayerKind::kBatchNorm: {
        w.bn_scale.resize(static_cast<std::size_t>(in_shapes[0].c));
        w.bn_shift.resize(static_cast<std::size_t>(in_shapes[0].c));
        for (auto& v : w.bn_scale) v = static_cast<float>(rng.uniform(0.5, 1.5));
        for (auto& v : w.bn_shift) v = static_cast<float>(rng.uniform(-0.5, 0.5));
        break;
      }
      default:
        break;  // no parameters
    }
  }
  return store;
}

WeightStore WeightStore::from_layers(std::vector<LayerWeights> layers) {
  WeightStore store;
  store.per_layer_ = std::move(layers);
  return store;
}

std::vector<bool> WeightStore::layers_for_node(const core::SerializablePlan& plan,
                                               const std::string& node) {
  if (plan.assignment.tier.empty())
    throw std::invalid_argument("layers_for_node: plan has an empty assignment");
  const std::size_t num_layers = plan.assignment.tier.size() - 1;
  std::vector<bool> mask(num_layers, false);
  std::optional<core::Tier> tier;
  if (node == "device0") tier = core::Tier::kDevice;
  else if (node == "edge0") tier = core::Tier::kEdge;
  else if (node == "cloud0") tier = core::Tier::kCloud;
  if (tier) {
    // Vertex 0 is the virtual input; layer i sits at tier[i + 1].
    for (std::size_t id = 0; id < num_layers; ++id)
      if (plan.assignment.tier[id + 1] == *tier) mask[id] = true;
    return mask;
  }
  // Any other edgeN name is a VSM tile-worker shard: it runs every fused
  // stack layer (on its tiles), and nothing else.
  if (node.size() > 4 && node.compare(0, 4, "edge") == 0 && plan.vsm) {
    for (const dnn::LayerId id : plan.vsm->stack) mask.at(id) = true;
    return mask;
  }
  throw std::invalid_argument("layers_for_node: plan assigns no layers to node '" + node + "'");
}

WeightStore WeightStore::shard_for_plan(const core::SerializablePlan& plan,
                                        const std::string& node) const {
  const std::vector<bool> keep = layers_for_node(plan, node);
  if (keep.size() != per_layer_.size())
    throw std::invalid_argument("shard_for_plan: store holds " +
                                std::to_string(per_layer_.size()) + " layers, plan covers " +
                                std::to_string(keep.size()));
  WeightStore shard;
  shard.per_layer_.resize(per_layer_.size());
  for (std::size_t id = 0; id < per_layer_.size(); ++id)
    if (keep[id]) shard.per_layer_[id] = per_layer_[id];
  return shard;
}

dnn::Tensor random_tensor(const dnn::Shape& shape, util::Rng& rng) {
  dnn::Tensor t(shape);
  for (std::size_t i = 0; i < t.size(); ++i) t[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  return t;
}

}  // namespace d3::exec
