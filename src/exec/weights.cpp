#include "exec/weights.h"

#include <cmath>

namespace d3::exec {

WeightStore WeightStore::random_for(const dnn::Network& net, std::uint64_t seed) {
  util::Rng rng(seed);
  WeightStore store;
  store.per_layer_.resize(net.num_layers());
  for (dnn::LayerId id = 0; id < net.num_layers(); ++id) {
    const dnn::NetworkLayer& layer = net.layer(id);
    const auto in_shapes = net.input_shapes(id);
    LayerWeights& w = store.per_layer_[id];
    switch (layer.spec.kind) {
      case dnn::LayerKind::kConv: {
        const int in_c = in_shapes[0].c;
        const int taps = layer.spec.window.kernel_w * layer.spec.window.kernel_h * in_c;
        const double scale = std::sqrt(2.0 / taps);
        w.weights.resize(static_cast<std::size_t>(layer.spec.out_channels) * taps);
        for (auto& v : w.weights) v = static_cast<float>(rng.normal(0.0, scale));
        w.bias.resize(static_cast<std::size_t>(layer.spec.out_channels));
        for (auto& v : w.bias) v = static_cast<float>(rng.uniform(-0.1, 0.1));
        break;
      }
      case dnn::LayerKind::kFullyConnected: {
        const std::int64_t in_n = in_shapes[0].elements();
        const double scale = std::sqrt(2.0 / static_cast<double>(in_n));
        w.weights.resize(static_cast<std::size_t>(layer.spec.out_features * in_n));
        for (auto& v : w.weights) v = static_cast<float>(rng.normal(0.0, scale));
        w.bias.resize(static_cast<std::size_t>(layer.spec.out_features));
        for (auto& v : w.bias) v = static_cast<float>(rng.uniform(-0.1, 0.1));
        break;
      }
      case dnn::LayerKind::kBatchNorm: {
        w.bn_scale.resize(static_cast<std::size_t>(in_shapes[0].c));
        w.bn_shift.resize(static_cast<std::size_t>(in_shapes[0].c));
        for (auto& v : w.bn_scale) v = static_cast<float>(rng.uniform(0.5, 1.5));
        for (auto& v : w.bn_shift) v = static_cast<float>(rng.uniform(-0.5, 0.5));
        break;
      }
      default:
        break;  // no parameters
    }
  }
  return store;
}

WeightStore WeightStore::from_layers(std::vector<LayerWeights> layers) {
  WeightStore store;
  store.per_layer_ = std::move(layers);
  return store;
}

dnn::Tensor random_tensor(const dnn::Shape& shape, util::Rng& rng) {
  dnn::Tensor t(shape);
  for (std::size_t i = 0; i < t.size(); ++i) t[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  return t;
}

}  // namespace d3::exec
