#include "exec/ops_reference.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

namespace d3::exec::reference {

namespace {

void require(bool ok, const std::string& what) {
  if (!ok) throw std::invalid_argument(what);
}

// Reads input value at global coordinates (ic, gy, gx). Out-of-image coordinates
// are padding (`pad_value`); in-image coordinates must lie inside the tile.
float read_global(const Tile& in, int ic, int gy, int gx, float pad_value) {
  if (gy < 0 || gy >= in.full_h || gx < 0 || gx >= in.full_w) return pad_value;
  const int ty = gy - in.origin_y;
  const int tx = gx - in.origin_x;
  if (ty < 0 || ty >= in.data.shape().h || tx < 0 || tx >= in.data.shape().w)
    throw std::logic_error("region op: tile does not cover required receptive field at (" +
                           std::to_string(gx) + "," + std::to_string(gy) + ")");
  return in.data.at(ic, ty, tx);
}

void validate_out_region(const Region& out, int out_full_w, int out_full_h) {
  require(out.x0 >= 0 && out.y0 >= 0 && out.x1 <= out_full_w && out.y1 <= out_full_h &&
              out.width() > 0 && out.height() > 0,
          "region op: bad output region");
}

}  // namespace

Tile conv2d_region(const Tile& input, const dnn::LayerSpec& spec, const LayerWeights& w,
                   Region out, int out_full_w, int out_full_h) {
  require(spec.kind == dnn::LayerKind::kConv, "conv2d_region: not a conv spec");
  validate_out_region(out, out_full_w, out_full_h);
  const dnn::Window& win = spec.window;
  const int in_c = input.data.shape().c;
  const int out_c = spec.out_channels;
  const std::size_t taps =
      static_cast<std::size_t>(win.kernel_w) * win.kernel_h * static_cast<std::size_t>(in_c);
  require(w.weights.size() == taps * static_cast<std::size_t>(out_c),
          "conv2d_region: weight size mismatch for '" + spec.name + "'");
  require(w.bias.size() == static_cast<std::size_t>(out_c),
          "conv2d_region: bias size mismatch for '" + spec.name + "'");

  Tile result;
  result.data = dnn::Tensor(dnn::Shape{out_c, out.height(), out.width()});
  result.origin_x = out.x0;
  result.origin_y = out.y0;
  result.full_w = out_full_w;
  result.full_h = out_full_h;

  for (int oc = 0; oc < out_c; ++oc) {
    const float* filter = w.weights.data() + static_cast<std::size_t>(oc) * taps;
    for (int oy = out.y0; oy < out.y1; ++oy) {
      for (int ox = out.x0; ox < out.x1; ++ox) {
        float acc = w.bias[static_cast<std::size_t>(oc)];
        std::size_t tap = 0;
        for (int ic = 0; ic < in_c; ++ic) {
          for (int ky = 0; ky < win.kernel_h; ++ky) {
            const int gy = oy * win.stride_h - win.pad_h + ky;
            for (int kx = 0; kx < win.kernel_w; ++kx, ++tap) {
              const int gx = ox * win.stride_w - win.pad_w + kx;
              acc += filter[tap] * read_global(input, ic, gy, gx, 0.0f);
            }
          }
        }
        result.data.at(oc, oy - out.y0, ox - out.x0) = acc;
      }
    }
  }
  return result;
}

Tile pool_region(const Tile& input, const dnn::LayerSpec& spec, Region out, int out_full_w,
                 int out_full_h) {
  const bool is_max = spec.kind == dnn::LayerKind::kMaxPool;
  require(is_max || spec.kind == dnn::LayerKind::kAvgPool, "pool_region: not a pool spec");
  validate_out_region(out, out_full_w, out_full_h);
  const dnn::Window& win = spec.window;
  const int channels = input.data.shape().c;
  const float pad_value = is_max ? -std::numeric_limits<float>::infinity() : 0.0f;
  const float window_area = static_cast<float>(win.kernel_w) * win.kernel_h;

  Tile result;
  result.data = dnn::Tensor(dnn::Shape{channels, out.height(), out.width()});
  result.origin_x = out.x0;
  result.origin_y = out.y0;
  result.full_w = out_full_w;
  result.full_h = out_full_h;

  for (int c = 0; c < channels; ++c) {
    for (int oy = out.y0; oy < out.y1; ++oy) {
      for (int ox = out.x0; ox < out.x1; ++ox) {
        float acc = is_max ? -std::numeric_limits<float>::infinity() : 0.0f;
        for (int ky = 0; ky < win.kernel_h; ++ky) {
          const int gy = oy * win.stride_h - win.pad_h + ky;
          for (int kx = 0; kx < win.kernel_w; ++kx) {
            const int gx = ox * win.stride_w - win.pad_w + kx;
            const float v = read_global(input, c, gy, gx, pad_value);
            acc = is_max ? std::max(acc, v) : acc + v;
          }
        }
        result.data.at(c, oy - out.y0, ox - out.x0) = is_max ? acc : acc / window_area;
      }
    }
  }
  return result;
}

Tile relu_region(Tile input) {
  for (std::size_t i = 0; i < input.data.size(); ++i)
    input.data[i] = std::max(0.0f, input.data[i]);
  return input;
}

Tile batch_norm_region(Tile input, const LayerWeights& w) {
  const dnn::Shape& s = input.data.shape();
  require(w.bn_scale.size() == static_cast<std::size_t>(s.c) &&
              w.bn_shift.size() == static_cast<std::size_t>(s.c),
          "batch_norm_region: parameter size mismatch");
  for (int c = 0; c < s.c; ++c) {
    const float scale = w.bn_scale[static_cast<std::size_t>(c)];
    const float shift = w.bn_shift[static_cast<std::size_t>(c)];
    for (int y = 0; y < s.h; ++y)
      for (int x = 0; x < s.w; ++x) input.data.at(c, y, x) = input.data.at(c, y, x) * scale + shift;
  }
  return input;
}

namespace {

dnn::Shape window_output_shape(const dnn::Tensor& input, const dnn::LayerSpec& spec) {
  return infer_output_shape(spec, {input.shape()});
}

}  // namespace

dnn::Tensor conv2d(const dnn::Tensor& input, const dnn::LayerSpec& spec,
                   const LayerWeights& w) {
  const dnn::Shape out = window_output_shape(input, spec);
  Tile t = reference::conv2d_region(Tile::whole(input), spec, w, Region{0, 0, out.w, out.h}, out.w, out.h);
  return std::move(t.data);
}

dnn::Tensor pool2d(const dnn::Tensor& input, const dnn::LayerSpec& spec) {
  const dnn::Shape out = window_output_shape(input, spec);
  Tile t = reference::pool_region(Tile::whole(input), spec, Region{0, 0, out.w, out.h}, out.w, out.h);
  return std::move(t.data);
}

dnn::Tensor global_avg_pool(const dnn::Tensor& input) {
  const dnn::Shape& s = input.shape();
  dnn::Tensor out(dnn::Shape{s.c, 1, 1});
  const float area = static_cast<float>(s.h) * static_cast<float>(s.w);
  for (int c = 0; c < s.c; ++c) {
    float acc = 0.0f;
    for (int y = 0; y < s.h; ++y)
      for (int x = 0; x < s.w; ++x) acc += input.at(c, y, x);
    out.at(c, 0, 0) = acc / area;
  }
  return out;
}

dnn::Tensor fully_connected(const dnn::Tensor& input, const dnn::LayerSpec& spec,
                            const LayerWeights& w) {
  require(spec.kind == dnn::LayerKind::kFullyConnected, "fully_connected: bad spec");
  const std::size_t in_n = input.size();
  const std::size_t out_n = static_cast<std::size_t>(spec.out_features);
  require(w.weights.size() == in_n * out_n, "fully_connected: weight size mismatch");
  require(w.bias.size() == out_n, "fully_connected: bias size mismatch");
  dnn::Tensor out(dnn::Shape{spec.out_features, 1, 1});
  for (std::size_t o = 0; o < out_n; ++o) {
    const float* row = w.weights.data() + o * in_n;
    float acc = w.bias[o];
    for (std::size_t i = 0; i < in_n; ++i) acc += row[i] * input[i];
    out[o] = acc;
  }
  return out;
}

dnn::Tensor relu(const dnn::Tensor& input) {
  dnn::Tensor out = input;
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = std::max(0.0f, out[i]);
  return out;
}

dnn::Tensor batch_norm(const dnn::Tensor& input, const LayerWeights& w) {
  Tile t = reference::batch_norm_region(Tile::whole(input), w);
  return std::move(t.data);
}

dnn::Tensor concat(const std::vector<const dnn::Tensor*>& inputs) {
  require(inputs.size() >= 2, "concat: needs >= 2 inputs");
  const int h = inputs[0]->shape().h;
  const int w = inputs[0]->shape().w;
  int total_c = 0;
  for (const auto* t : inputs) {
    require(t->shape().h == h && t->shape().w == w, "concat: spatial mismatch");
    total_c += t->shape().c;
  }
  dnn::Tensor out(dnn::Shape{total_c, h, w});
  int c_base = 0;
  for (const auto* t : inputs) {
    for (int c = 0; c < t->shape().c; ++c)
      for (int y = 0; y < h; ++y)
        for (int x = 0; x < w; ++x) out.at(c_base + c, y, x) = t->at(c, y, x);
    c_base += t->shape().c;
  }
  return out;
}

dnn::Tensor add(const std::vector<const dnn::Tensor*>& inputs) {
  require(inputs.size() >= 2, "add: needs >= 2 inputs");
  dnn::Tensor out = *inputs[0];
  for (std::size_t i = 1; i < inputs.size(); ++i) {
    require(inputs[i]->shape() == out.shape(), "add: shape mismatch");
    for (std::size_t j = 0; j < out.size(); ++j) out[j] += (*inputs[i])[j];
  }
  return out;
}

dnn::Tensor softmax(const dnn::Tensor& input) {
  dnn::Tensor out = input;
  float max_v = out[0];
  for (std::size_t i = 1; i < out.size(); ++i) max_v = std::max(max_v, out[i]);
  float sum = 0.0f;
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = std::exp(out[i] - max_v);
    sum += out[i];
  }
  for (std::size_t i = 0; i < out.size(); ++i) out[i] /= sum;
  return out;
}

}  // namespace d3::exec::reference
