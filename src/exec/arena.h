// Scratch-memory arena for the operator kernels.
//
// The fast kernels (ops.h) lower convolution to im2col + GEMM, which needs a
// packed-patch buffer per call. Allocating that buffer with malloc per layer
// costs page faults and allocator traffic on the hot path, so every kernel
// instead bump-allocates from an Arena and releases with an ArenaScope: after
// the first inference warms the chunks up, the whole compute path is
// allocation-free (tests pin chunk_allocations() steady-state at zero).
//
// An Arena is intentionally NOT thread-safe: each executing thread uses its
// own (kernels default to the thread_local instance), which is what keeps
// concurrent VSM tiles and pipelined requests allocation-free without locks.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

namespace d3::exec {

class Arena {
 public:
  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Returns an uninitialised, 64-byte-aligned buffer of `n` floats. The buffer
  // stays valid until the enclosing ArenaScope ends (or reset()); growing the
  // arena never moves previously returned buffers (new space comes from a new
  // chunk).
  float* floats(std::size_t n);

  // Reclaims every allocation but keeps the chunks for reuse.
  void reset();

  // Floats currently handed out / total chunk capacity in floats.
  std::size_t used() const;
  std::size_t capacity() const;
  // Number of chunk mallocs performed so far. A warmed-up arena serves every
  // inference without new chunks, so this stays constant in steady state.
  std::size_t chunk_allocations() const { return chunk_allocations_; }

  // The calling thread's default arena: what a kernel uses when its OpContext
  // carries no explicit arena.
  static Arena& thread_local_arena();

 private:
  friend class ArenaScope;

  struct Chunk {
    std::unique_ptr<float[]> storage;  // raw allocation (capacity + alignment slack)
    float* base = nullptr;             // 64-byte-aligned start
    std::size_t capacity = 0;          // floats available from base
    std::size_t used = 0;              // floats handed out (always 16-float aligned)
  };
  struct Mark {
    std::size_t chunk = 0;
    std::size_t used = 0;
  };

  Mark mark() const;
  void rewind(const Mark& m);

  std::vector<Chunk> chunks_;
  std::size_t active_ = 0;  // index of the chunk currently being bumped
  std::size_t chunk_allocations_ = 0;
};

// RAII scope: rewinds the arena to its construction-time state, so one op's
// scratch is reclaimed for the next op without ever hitting the allocator.
class ArenaScope {
 public:
  explicit ArenaScope(Arena& arena) : arena_(arena), mark_(arena.mark()) {}
  ~ArenaScope() { arena_.rewind(mark_); }
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

 private:
  Arena& arena_;
  Arena::Mark mark_;
};

}  // namespace d3::exec
