// Optimised implementations of the DNN operators, in two forms:
//
//  * whole-tensor ops used by the reference executor, and
//  * region-aware window ops (conv/pool) that compute an arbitrary rectangle of
//    the output from an input *tile* positioned anywhere in the full feature map.
//
// The region form is the primitive the vertical separation module executes on
// each edge node: the tile carries its global origin, out-of-image coordinates
// are zero padding (max-pool: -inf), and touching an in-image coordinate that the
// tile does not cover throws — i.e. an incorrect tile plan fails loudly instead
// of silently corrupting the output. Whole-tensor ops are the region ops applied
// to the full extent, so "tiled == full" is exact float equality, not tolerance.
//
// Performance architecture (PR 2). Convolution is lowered to an interior/halo
// decomposition — all padding and tile-boundary handling is hoisted into the
// im2col packing stage as row-segment memset/memcpy — followed by a
// register-tiled, cache-blocked GEMM over the packed patches. Pooling splits
// each output row into border segments (reference-order scalar loop) and an
// interior fast path (branch-free, vectorised across output pixels).
// Fully-connected is a blocked GEMV; concat is a straight memcpy; the
// elementwise ops are flat vectorisable loops. Scratch comes from an
// exec::Arena (see arena.h) so the steady-state compute path never mallocs.
//
// Lossless invariant: every kernel accumulates each output element in the EXACT
// tap order of the reference kernels (ops_reference.h) — blocking only adds
// independent accumulators, never reassociates one — so outputs are
// bitwise-identical to the original scalar loops, which the test suite pins.
#pragma once

#include <functional>

#include "dnn/layer.h"
#include "dnn/tensor.h"
#include "exec/weights.h"

namespace d3::exec {

class Arena;

// Intra-op parallelism hook: invoked as parallel_for(n, body), expected to run
// body(0..n-1) (in any order, possibly concurrently) and return only when all
// calls finished — the same contract as core::TileParallelFor, satisfied by
// runtime::ThreadPool::parallel_for. Kernels split work into blocks of
// *disjoint* output elements, each accumulated in reference order, so results
// are bitwise-identical for any schedule (and for serial execution).
using ParallelFor = std::function<void(std::size_t, const std::function<void(std::size_t)>&)>;

// Optional execution context threaded through the kernels.
struct OpContext {
  // Scratch arena for packed patches and staging buffers. nullptr: the
  // kernels use Arena::thread_local_arena(), which already gives each
  // executor/VSM-worker thread allocation-free steady state.
  Arena* arena = nullptr;
  // Intra-op work splitting. nullptr or empty function: serial.
  const ParallelFor* parallel_for = nullptr;
};

// Half-open rectangle in global feature-map coordinates.
struct Region {
  int x0 = 0;
  int y0 = 0;
  int x1 = 0;  // exclusive
  int y1 = 0;  // exclusive

  int width() const { return x1 - x0; }
  int height() const { return y1 - y0; }
  bool operator==(const Region&) const = default;
};

// A tile: tensor data plus where it sits in the full feature map.
struct Tile {
  dnn::Tensor data;
  int origin_x = 0;
  int origin_y = 0;
  // Spatial extent of the *full* feature map this tile was cut from.
  int full_w = 0;
  int full_h = 0;

  static Tile whole(dnn::Tensor t) {
    const int h = t.shape().h;
    const int w = t.shape().w;
    return Tile{std::move(t), 0, 0, w, h};
  }
};

// Row-wise memcpy between a full CHW feature map and a region-sized CHW buffer
// (each (channel, row) of a region is contiguous on both sides). `buf` holds
// map.shape().c * region.height() * region.width() floats. The caller
// guarantees the region lies inside the map. Shared by tile crop (map -> buf)
// and tile gather/assembly (buf -> map).
void copy_region_from_map(const dnn::Tensor& map, const Region& region, float* buf);
void copy_region_to_map(const float* buf, const Region& region, dnn::Tensor& map);

// --- Region-aware window ops -------------------------------------------------

// Convolution: computes output rows/cols `out` (global output coordinates) of a
// conv layer whose full output spatial size is out_full_w x out_full_h. Reads the
// input tile; padding per spec.window. Result tile origin = (out.x0, out.y0).
Tile conv2d_region(const Tile& input, const dnn::LayerSpec& spec, const LayerWeights& w,
                   Region out, int out_full_w, int out_full_h, const OpContext& ctx = {});

// Max/avg pooling over a region (avg divides by the full window area including
// padding, position-independently).
Tile pool_region(const Tile& input, const dnn::LayerSpec& spec, Region out, int out_full_w,
                 int out_full_h);

// Elementwise ops keep the tile geometry.
Tile relu_region(Tile input);
Tile batch_norm_region(Tile input, const LayerWeights& w);

// --- Whole-tensor ops (reference executor) -----------------------------------

dnn::Tensor conv2d(const dnn::Tensor& input, const dnn::LayerSpec& spec,
                   const LayerWeights& w, const OpContext& ctx = {});
dnn::Tensor pool2d(const dnn::Tensor& input, const dnn::LayerSpec& spec);
dnn::Tensor global_avg_pool(const dnn::Tensor& input);
dnn::Tensor fully_connected(const dnn::Tensor& input, const dnn::LayerSpec& spec,
                            const LayerWeights& w);
dnn::Tensor relu(const dnn::Tensor& input);
dnn::Tensor batch_norm(const dnn::Tensor& input, const LayerWeights& w);
// Move-aware overloads: operate in place on the argument's storage instead of
// deep-copying. Callers that discard the input (layer chains) pass an rvalue.
dnn::Tensor relu(dnn::Tensor&& input);
dnn::Tensor batch_norm(dnn::Tensor&& input, const LayerWeights& w);
dnn::Tensor concat(const std::vector<const dnn::Tensor*>& inputs);
dnn::Tensor add(const std::vector<const dnn::Tensor*>& inputs);
dnn::Tensor softmax(const dnn::Tensor& input);

}  // namespace d3::exec
