#include "exec/ops.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <string>

#include "exec/arena.h"

namespace d3::exec {

namespace {

void require(bool ok, const std::string& what) {
  if (!ok) throw std::invalid_argument(what);
}

// Floor/ceil division for possibly-negative numerators (d > 0).
int div_floor(int a, int d) { return a >= 0 ? a / d : -((-a + d - 1) / d); }
int div_ceil(int a, int d) { return a >= 0 ? (a + d - 1) / d : -(-a / d); }

void validate_out_region(const Region& out, int out_full_w, int out_full_h) {
  require(out.x0 >= 0 && out.y0 >= 0 && out.x1 <= out_full_w && out.y1 <= out_full_h &&
              out.width() > 0 && out.height() > 0,
          "region op: bad output region");
}

// Non-owning view of an input positioned in its full feature map: lets the
// whole-tensor wrappers run the region kernels directly on the caller's
// storage (Tile holds its Tensor by value, so going through Tile::whole would
// deep-copy the input first).
struct InView {
  const dnn::Tensor& data;
  int origin_x = 0;
  int origin_y = 0;
  int full_w = 0;
  int full_h = 0;

  static InView of(const Tile& t) {
    return {t.data, t.origin_x, t.origin_y, t.full_w, t.full_h};
  }
  static InView whole(const dnn::Tensor& t) {
    return {t, 0, 0, t.shape().w, t.shape().h};
  }
};

// 1-D extent of the in-image input coordinates a window op touches: the
// smallest and largest g = o*stride - pad + k (o in [o0, o1), k in [0, kernel))
// with 0 <= g < full. Returns false when no in-image coordinate is touched on
// this axis.
bool touched_extent(int o0, int o1, int kernel, int stride, int pad, int full, int* lo,
                    int* hi) {
  int mn = std::numeric_limits<int>::max();
  int mx = std::numeric_limits<int>::min();
  for (int k = 0; k < kernel; ++k) {
    const int off = k - pad;
    const int o_lo = std::max(o0, div_ceil(-off, stride));
    if (o_lo < o1) mn = std::min(mn, o_lo * stride + off);
    const int o_hi = std::min(o1 - 1, div_floor(full - 1 - off, stride));
    if (o_hi >= o0) mx = std::max(mx, o_hi * stride + off);
  }
  if (mn > mx) return false;
  *lo = mn;
  *hi = mx;
  return true;
}

// Hoisted form of the per-tap tile-coverage test the reference kernels perform
// inside read_global: the reference touches exactly the product of the touched
// x and y coordinate sets, and a tile is a contiguous rectangle, so covering
// the touched extents is equivalent to covering every touched coordinate.
// Throws the same std::logic_error an incorrect tile plan produced before,
// just before any packing instead of mid-loop.
void check_receptive_field(const InView& in, const dnn::Window& win, const Region& out) {
  int lo_x = 0, hi_x = -1, lo_y = 0, hi_y = -1;
  if (!touched_extent(out.x0, out.x1, win.kernel_w, win.stride_w, win.pad_w, in.full_w, &lo_x,
                      &hi_x))
    return;
  if (!touched_extent(out.y0, out.y1, win.kernel_h, win.stride_h, win.pad_h, in.full_h, &lo_y,
                      &hi_y))
    return;
  const int tile_h = in.data.shape().h;
  const int tile_w = in.data.shape().w;
  if (lo_x < in.origin_x || hi_x >= in.origin_x + tile_w || lo_y < in.origin_y ||
      hi_y >= in.origin_y + tile_h) {
    const int gx = lo_x < in.origin_x ? lo_x : hi_x;
    const int gy = lo_y < in.origin_y ? lo_y : hi_y;
    throw std::logic_error("region op: tile does not cover required receptive field at (" +
                           std::to_string(gx) + "," + std::to_string(gy) + ")");
  }
}

// --- Convolution: im2col packing + cache-blocked GEMM ------------------------
//
// The packed patch matrix P is taps x npix row-major: row t = (ic, ky, kx) in
// the reference tap order, column = output pixel (row-major over the region).
// All padding and tile-boundary handling lives here as row-segment
// memset/memcpy — the interior is branch-free bulk copies — so the GEMM below
// sees a dense problem. Out-of-image coordinates become 0.0f, which is exactly
// the `filter * 0.0f` contribution the reference kernel adds for pad taps.
void pack_patches(const InView& in, const dnn::Window& win, const Region& out, float* pack) {
  const dnn::Shape& ts = in.data.shape();
  const int ow = out.width();
  const std::size_t npix = static_cast<std::size_t>(ow) * out.height();
  const float* src = in.data.data();
  std::size_t t = 0;
  for (int ic = 0; ic < ts.c; ++ic) {
    const float* plane = src + static_cast<std::size_t>(ic) * ts.h * ts.w;
    for (int ky = 0; ky < win.kernel_h; ++ky) {
      for (int kx = 0; kx < win.kernel_w; ++kx, ++t) {
        float* row = pack + t * npix;
        const int off = kx - win.pad_w;
        for (int oy = out.y0; oy < out.y1; ++oy) {
          float* dst = row + static_cast<std::size_t>(oy - out.y0) * ow;
          const int gy = oy * win.stride_h - win.pad_h + ky;
          if (gy < 0 || gy >= in.full_h) {
            std::memset(dst, 0, static_cast<std::size_t>(ow) * sizeof(float));
            continue;
          }
          // In-image ox range for this kx (clamped to the region).
          const int ox_lo = std::clamp(div_ceil(-off, win.stride_w), out.x0, out.x1);
          const int ox_hi =
              std::clamp(div_floor(in.full_w - 1 - off, win.stride_w) + 1, out.x0, out.x1);
          if (ox_lo > out.x0)
            std::memset(dst, 0, static_cast<std::size_t>(ox_lo - out.x0) * sizeof(float));
          if (ox_hi < out.x1)
            std::memset(dst + (std::max(ox_hi, out.x0) - out.x0), 0,
                        static_cast<std::size_t>(out.x1 - std::max(ox_hi, out.x0)) *
                            sizeof(float));
          if (ox_lo < ox_hi) {
            const float* s = plane +
                             static_cast<std::size_t>(gy - in.origin_y) * ts.w +
                             (ox_lo * win.stride_w + off - in.origin_x);
            float* d = dst + (ox_lo - out.x0);
            const int n = ox_hi - ox_lo;
            if (win.stride_w == 1) {
              std::memcpy(d, s, static_cast<std::size_t>(n) * sizeof(float));
            } else {
              for (int i = 0; i < n; ++i) d[i] = s[static_cast<std::size_t>(i) * win.stride_w];
            }
          }
        }
      }
    }
  }
}

// Register-tile shape: kMr output channels x kNr output pixels of independent
// accumulators. kKc taps per k-block keeps the packed slab (kKc * kNr floats =
// 16 KiB) L1-resident while a whole channel block streams over it; kMc output
// channels per task bounds the weight working set (kMc * kKc floats = 64 KiB)
// to L2 and doubles as the intra-op parallel grain.
constexpr int kMr = 4;
constexpr int kNr = 16;
constexpr std::size_t kKc = 256;
constexpr int kMc = 64;
// Below this many MACs, intra-op parallelism costs more than it saves.
constexpr std::int64_t kParallelMacThreshold = 1 << 20;

// Continues the accumulation of a full kMr x kNr output block over taps
// [t0, t1). Every output element owns one accumulator whose additions run in
// ascending tap order — k-blocking resumes the same chain (first block starts
// from the bias, exactly like the reference) — so the result is
// bitwise-identical to the scalar loops while the kNr-wide inner loop
// vectorises (independent chains, no reassociation).
template <int Mn, int Nn>
void micro_full(const float* a, std::size_t taps, const float* p, std::size_t npix,
                std::size_t t0, std::size_t t1, bool first, const float* bias, float* c) {
  float acc[Mn][Nn];
  for (int m = 0; m < Mn; ++m)
    for (int j = 0; j < Nn; ++j) acc[m][j] = first ? bias[m] : c[m * npix + j];
  for (std::size_t t = t0; t < t1; ++t) {
    const float* prow = p + t * npix;
    for (int m = 0; m < Mn; ++m) {
      const float am = a[m * taps + t];
      for (int j = 0; j < Nn; ++j) acc[m][j] += am * prow[j];
    }
  }
  for (int m = 0; m < Mn; ++m)
    for (int j = 0; j < Nn; ++j) c[m * npix + j] = acc[m][j];
}

// Same contract for the ragged edges of the output (runtime mn x nn).
void micro_edge(const float* a, std::size_t taps, const float* p, std::size_t npix,
                std::size_t t0, std::size_t t1, bool first, const float* bias, float* c, int mn,
                int nn) {
  float acc[kMr][kNr];
  for (int m = 0; m < mn; ++m)
    for (int j = 0; j < nn; ++j) acc[m][j] = first ? bias[m] : c[m * npix + j];
  for (std::size_t t = t0; t < t1; ++t) {
    const float* prow = p + t * npix;
    for (int m = 0; m < mn; ++m) {
      const float am = a[m * taps + t];
      for (int j = 0; j < nn; ++j) acc[m][j] += am * prow[j];
    }
  }
  for (int m = 0; m < mn; ++m)
    for (int j = 0; j < nn; ++j) c[m * npix + j] = acc[m][j];
}

// One task's rectangle of the output: channels [m0, m1), pixels [j0, j1).
void gemm_rect(const float* a, const float* bias, const float* p, std::size_t taps,
               std::size_t npix, int m0, int m1, std::size_t j0, std::size_t j1, float* c) {
  for (std::size_t jb = j0; jb < j1; jb += kNr) {
    const int nn = static_cast<int>(std::min<std::size_t>(kNr, j1 - jb));
    for (std::size_t t0 = 0; t0 < taps; t0 += kKc) {
      const std::size_t t1 = std::min(taps, t0 + kKc);
      const bool first = t0 == 0;
      for (int m = m0; m < m1; m += kMr) {
        const int mn = std::min(kMr, m1 - m);
        const float* am = a + static_cast<std::size_t>(m) * taps;
        float* cm = c + static_cast<std::size_t>(m) * npix + jb;
        if (mn == kMr && nn == kNr)
          micro_full<kMr, kNr>(am, taps, p + jb, npix, t0, t1, first, bias + m, cm);
        else
          micro_edge(am, taps, p + jb, npix, t0, t1, first, bias + m, cm, mn, nn);
      }
    }
  }
}

// C[oc][pix] = bias[oc] + sum_t A[oc][t] * P[t][pix]. Tasks are disjoint
// output rectangles (channel blocks x pixel chunks), so any parallel schedule
// produces the same bits as the serial loop.
void gemm(const float* a, const float* bias, const float* p, std::size_t taps,
          std::size_t npix, int out_c, float* c, const ParallelFor* parallel) {
  const std::int64_t macs = static_cast<std::int64_t>(taps) * npix * out_c;
  const bool par = parallel && *parallel && macs >= kParallelMacThreshold;
  const std::size_t n_m = static_cast<std::size_t>((out_c + kMc - 1) / kMc);
  std::size_t j_chunk = npix;
  std::size_t n_j = 1;
  if (par && n_m < 8) {
    // Few channel blocks: split pixels (kNr-aligned) until there is enough
    // parallel grain. Serial execution keeps one chunk for maximal locality.
    const std::size_t want = (8 + n_m - 1) / n_m;
    n_j = std::clamp<std::size_t>(npix / (4 * kNr), 1, want);
    j_chunk = (npix / n_j + kNr - 1) / kNr * kNr;
    n_j = (npix + j_chunk - 1) / j_chunk;
  }
  const std::size_t n_tasks = n_m * n_j;
  const auto run_rect = [&](std::size_t idx) {
    const int m0 = static_cast<int>(idx / n_j) * kMc;
    const int m1 = std::min(out_c, m0 + kMc);
    const std::size_t j0 = (idx % n_j) * j_chunk;
    const std::size_t j1 = std::min(npix, j0 + j_chunk);
    gemm_rect(a, bias, p, taps, npix, m0, m1, j0, j1, c);
  };
  if (par && n_tasks > 1) {
    (*parallel)(n_tasks, run_rect);
  } else {
    for (std::size_t i = 0; i < n_tasks; ++i) run_rect(i);
  }
}

// Shared by the region op and the whole-tensor wrapper (which passes a
// non-owning whole-image view instead of copying the input into a Tile).
dnn::Tensor conv2d_impl(const InView& input, const dnn::LayerSpec& spec, const LayerWeights& w,
                        Region out, int out_full_w, int out_full_h, const OpContext& ctx) {
  require(spec.kind == dnn::LayerKind::kConv, "conv2d_region: not a conv spec");
  validate_out_region(out, out_full_w, out_full_h);
  const dnn::Window& win = spec.window;
  const int in_c = input.data.shape().c;
  const int out_c = spec.out_channels;
  const std::size_t taps =
      static_cast<std::size_t>(win.kernel_w) * win.kernel_h * static_cast<std::size_t>(in_c);
  require(w.weights.size() == taps * static_cast<std::size_t>(out_c),
          "conv2d_region: weight size mismatch for '" + spec.name + "'");
  require(w.bias.size() == static_cast<std::size_t>(out_c),
          "conv2d_region: bias size mismatch for '" + spec.name + "'");
  check_receptive_field(input, win, out);

  dnn::Tensor result(dnn::Shape{out_c, out.height(), out.width()});
  const std::size_t npix = static_cast<std::size_t>(out.width()) * out.height();
  Arena& arena = ctx.arena ? *ctx.arena : Arena::thread_local_arena();
  ArenaScope scope(arena);
  float* pack = arena.floats(taps * npix);
  pack_patches(input, win, out, pack);
  gemm(w.weights.data(), w.bias.data(), pack, taps, npix, out_c, result.data(),
       ctx.parallel_for);
  return result;
}

dnn::Tensor pool_impl(const InView& input, const dnn::LayerSpec& spec, Region out,
                      int out_full_w, int out_full_h) {
  const bool is_max = spec.kind == dnn::LayerKind::kMaxPool;
  require(is_max || spec.kind == dnn::LayerKind::kAvgPool, "pool_region: not a pool spec");
  validate_out_region(out, out_full_w, out_full_h);
  const dnn::Window& win = spec.window;
  const int channels = input.data.shape().c;
  const float pad_value = is_max ? -std::numeric_limits<float>::infinity() : 0.0f;
  const float window_area = static_cast<float>(win.kernel_w) * win.kernel_h;
  check_receptive_field(input, win, out);

  dnn::Tensor result(dnn::Shape{channels, out.height(), out.width()});

  const dnn::Shape& ts = input.data.shape();
  const int tw = ts.w;
  const int th = ts.h;
  const int ow = out.width();
  const int oh = out.height();
  const float* src = input.data.data();
  float* dst = result.data();

  // Interior outputs: window fully in-image, so no pad taps exist and the fast
  // path below needs no per-tap coordinate tests. Border outputs run the
  // reference-order scalar loop (pads included in the exact tap positions).
  const int ix0 = std::max(out.x0, div_ceil(win.pad_w, win.stride_w));
  const int ix1 =
      std::min(out.x1, div_floor(input.full_w - win.kernel_w + win.pad_w, win.stride_w) + 1);
  const int iy0 = std::max(out.y0, div_ceil(win.pad_h, win.stride_h));
  const int iy1 =
      std::min(out.y1, div_floor(input.full_h - win.kernel_h + win.pad_h, win.stride_h) + 1);

  const auto border_output = [&](int c, int oy, int ox) {
    float acc = is_max ? -std::numeric_limits<float>::infinity() : 0.0f;
    for (int ky = 0; ky < win.kernel_h; ++ky) {
      const int gy = oy * win.stride_h - win.pad_h + ky;
      for (int kx = 0; kx < win.kernel_w; ++kx) {
        const int gx = ox * win.stride_w - win.pad_w + kx;
        float v;
        if (gy < 0 || gy >= input.full_h || gx < 0 || gx >= input.full_w)
          v = pad_value;
        else
          v = src[(static_cast<std::size_t>(c) * th + (gy - input.origin_y)) * tw +
                  (gx - input.origin_x)];
        acc = is_max ? std::max(acc, v) : acc + v;
      }
    }
    dst[(static_cast<std::size_t>(c) * oh + (oy - out.y0)) * ow + (ox - out.x0)] =
        is_max ? acc : acc / window_area;
  };

  const auto interior_row = [&](int c, int oy, int lo, int hi) {
    float* d = dst + (static_cast<std::size_t>(c) * oh + (oy - out.y0)) * ow + (lo - out.x0);
    const int n = hi - lo;
    for (int j = 0; j < n; ++j) d[j] = is_max ? -std::numeric_limits<float>::infinity() : 0.0f;
    for (int ky = 0; ky < win.kernel_h; ++ky) {
      const int gy = oy * win.stride_h - win.pad_h + ky;
      const float* srow =
          src + (static_cast<std::size_t>(c) * th + (gy - input.origin_y)) * tw;
      for (int kx = 0; kx < win.kernel_w; ++kx) {
        const float* s = srow + (lo * win.stride_w - win.pad_w + kx - input.origin_x);
        if (win.stride_w == 1) {
          if (is_max)
            for (int j = 0; j < n; ++j) d[j] = std::max(d[j], s[j]);
          else
            for (int j = 0; j < n; ++j) d[j] += s[j];
        } else {
          if (is_max)
            for (int j = 0; j < n; ++j)
              d[j] = std::max(d[j], s[static_cast<std::size_t>(j) * win.stride_w]);
          else
            for (int j = 0; j < n; ++j) d[j] += s[static_cast<std::size_t>(j) * win.stride_w];
        }
      }
    }
    if (!is_max)
      for (int j = 0; j < n; ++j) d[j] = d[j] / window_area;
  };

  for (int c = 0; c < channels; ++c) {
    for (int oy = out.y0; oy < out.y1; ++oy) {
      int lo = out.x1, hi = out.x1;
      if (oy >= iy0 && oy < iy1) {
        lo = std::clamp(ix0, out.x0, out.x1);
        hi = std::clamp(ix1, lo, out.x1);
      }
      for (int ox = out.x0; ox < lo; ++ox) border_output(c, oy, ox);
      if (hi > lo) interior_row(c, oy, lo, hi);
      for (int ox = hi; ox < out.x1; ++ox) border_output(c, oy, ox);
    }
  }
  return result;
}

}  // namespace

void copy_region_from_map(const dnn::Tensor& map, const Region& region, float* buf) {
  const dnn::Shape& s = map.shape();
  const std::size_t rw = static_cast<std::size_t>(region.width());
  const float* src = map.data();
  for (int c = 0; c < s.c; ++c)
    for (int y = region.y0; y < region.y1; ++y)
      std::memcpy(buf + (static_cast<std::size_t>(c) * region.height() + (y - region.y0)) * rw,
                  src + (static_cast<std::size_t>(c) * s.h + y) * s.w + region.x0,
                  rw * sizeof(float));
}

void copy_region_to_map(const float* buf, const Region& region, dnn::Tensor& map) {
  const dnn::Shape& s = map.shape();
  const std::size_t rw = static_cast<std::size_t>(region.width());
  float* dst = map.data();
  for (int c = 0; c < s.c; ++c)
    for (int y = region.y0; y < region.y1; ++y)
      std::memcpy(dst + (static_cast<std::size_t>(c) * s.h + y) * s.w + region.x0,
                  buf + (static_cast<std::size_t>(c) * region.height() + (y - region.y0)) * rw,
                  rw * sizeof(float));
}

Tile conv2d_region(const Tile& input, const dnn::LayerSpec& spec, const LayerWeights& w,
                   Region out, int out_full_w, int out_full_h, const OpContext& ctx) {
  Tile result;
  result.data = conv2d_impl(InView::of(input), spec, w, out, out_full_w, out_full_h, ctx);
  result.origin_x = out.x0;
  result.origin_y = out.y0;
  result.full_w = out_full_w;
  result.full_h = out_full_h;
  return result;
}

Tile pool_region(const Tile& input, const dnn::LayerSpec& spec, Region out, int out_full_w,
                 int out_full_h) {
  Tile result;
  result.data = pool_impl(InView::of(input), spec, out, out_full_w, out_full_h);
  result.origin_x = out.x0;
  result.origin_y = out.y0;
  result.full_w = out_full_w;
  result.full_h = out_full_h;
  return result;
}

Tile relu_region(Tile input) {
  float* p = input.data.data();
  const std::size_t n = input.data.size();
  for (std::size_t i = 0; i < n; ++i) p[i] = std::max(0.0f, p[i]);
  return input;
}

Tile batch_norm_region(Tile input, const LayerWeights& w) {
  const dnn::Shape& s = input.data.shape();
  require(w.bn_scale.size() == static_cast<std::size_t>(s.c) &&
              w.bn_shift.size() == static_cast<std::size_t>(s.c),
          "batch_norm_region: parameter size mismatch");
  const std::size_t hw = static_cast<std::size_t>(s.h) * s.w;
  float* p = input.data.data();
  for (int c = 0; c < s.c; ++c) {
    const float scale = w.bn_scale[static_cast<std::size_t>(c)];
    const float shift = w.bn_shift[static_cast<std::size_t>(c)];
    float* q = p + static_cast<std::size_t>(c) * hw;
    for (std::size_t i = 0; i < hw; ++i) q[i] = q[i] * scale + shift;
  }
  return input;
}

namespace {

dnn::Shape window_output_shape(const dnn::Tensor& input, const dnn::LayerSpec& spec) {
  return infer_output_shape(spec, {input.shape()});
}

}  // namespace

dnn::Tensor conv2d(const dnn::Tensor& input, const dnn::LayerSpec& spec, const LayerWeights& w,
                   const OpContext& ctx) {
  const dnn::Shape out = window_output_shape(input, spec);
  return conv2d_impl(InView::whole(input), spec, w, Region{0, 0, out.w, out.h}, out.w, out.h,
                     ctx);
}

dnn::Tensor pool2d(const dnn::Tensor& input, const dnn::LayerSpec& spec) {
  const dnn::Shape out = window_output_shape(input, spec);
  return pool_impl(InView::whole(input), spec, Region{0, 0, out.w, out.h}, out.w, out.h);
}

dnn::Tensor global_avg_pool(const dnn::Tensor& input) {
  const dnn::Shape& s = input.shape();
  dnn::Tensor out(dnn::Shape{s.c, 1, 1});
  const float area = static_cast<float>(s.h) * static_cast<float>(s.w);
  const std::size_t hw = static_cast<std::size_t>(s.h) * s.w;
  const float* p = input.data();
  for (int c = 0; c < s.c; ++c) {
    const float* q = p + static_cast<std::size_t>(c) * hw;
    float acc = 0.0f;
    for (std::size_t i = 0; i < hw; ++i) acc += q[i];
    out.at(c, 0, 0) = acc / area;
  }
  return out;
}

dnn::Tensor fully_connected(const dnn::Tensor& input, const dnn::LayerSpec& spec,
                            const LayerWeights& w) {
  require(spec.kind == dnn::LayerKind::kFullyConnected, "fully_connected: bad spec");
  const std::size_t in_n = input.size();
  const std::size_t out_n = static_cast<std::size_t>(spec.out_features);
  require(w.weights.size() == in_n * out_n, "fully_connected: weight size mismatch");
  require(w.bias.size() == out_n, "fully_connected: bias size mismatch");
  dnn::Tensor out(dnn::Shape{spec.out_features, 1, 1});
  const float* weights = w.weights.data();
  const float* x = input.data();
  // Blocked GEMV: four output rows share each streamed pass over the input, so
  // the input vector is loaded once per block instead of once per output. Each
  // output keeps its own ascending-index accumulation chain (bitwise-identical
  // to the reference row loop).
  std::size_t o = 0;
  for (; o + 4 <= out_n; o += 4) {
    const float* r0 = weights + o * in_n;
    const float* r1 = r0 + in_n;
    const float* r2 = r1 + in_n;
    const float* r3 = r2 + in_n;
    float a0 = w.bias[o];
    float a1 = w.bias[o + 1];
    float a2 = w.bias[o + 2];
    float a3 = w.bias[o + 3];
    for (std::size_t i = 0; i < in_n; ++i) {
      const float v = x[i];
      a0 += r0[i] * v;
      a1 += r1[i] * v;
      a2 += r2[i] * v;
      a3 += r3[i] * v;
    }
    out[o] = a0;
    out[o + 1] = a1;
    out[o + 2] = a2;
    out[o + 3] = a3;
  }
  for (; o < out_n; ++o) {
    const float* row = weights + o * in_n;
    float acc = w.bias[o];
    for (std::size_t i = 0; i < in_n; ++i) acc += row[i] * x[i];
    out[o] = acc;
  }
  return out;
}

dnn::Tensor relu(dnn::Tensor&& input) {
  float* p = input.data();
  const std::size_t n = input.size();
  for (std::size_t i = 0; i < n; ++i) p[i] = std::max(0.0f, p[i]);
  return std::move(input);
}

dnn::Tensor relu(const dnn::Tensor& input) { return relu(dnn::Tensor(input)); }

dnn::Tensor batch_norm(dnn::Tensor&& input, const LayerWeights& w) {
  Tile t = batch_norm_region(Tile::whole(std::move(input)), w);
  return std::move(t.data);
}

dnn::Tensor batch_norm(const dnn::Tensor& input, const LayerWeights& w) {
  return batch_norm(dnn::Tensor(input), w);
}

dnn::Tensor concat(const std::vector<const dnn::Tensor*>& inputs) {
  require(inputs.size() >= 2, "concat: needs >= 2 inputs");
  const int h = inputs[0]->shape().h;
  const int w = inputs[0]->shape().w;
  int total_c = 0;
  for (const auto* t : inputs) {
    require(t->shape().h == h && t->shape().w == w, "concat: spatial mismatch");
    total_c += t->shape().c;
  }
  dnn::Tensor out(dnn::Shape{total_c, h, w});
  // CHW layout makes each input one contiguous block of the output.
  float* dst = out.data();
  for (const auto* t : inputs) {
    std::memcpy(dst, t->data(), t->size() * sizeof(float));
    dst += t->size();
  }
  return out;
}

dnn::Tensor add(const std::vector<const dnn::Tensor*>& inputs) {
  require(inputs.size() >= 2, "add: needs >= 2 inputs");
  dnn::Tensor out = *inputs[0];
  float* d = out.data();
  const std::size_t n = out.size();
  for (std::size_t i = 1; i < inputs.size(); ++i) {
    require(inputs[i]->shape() == out.shape(), "add: shape mismatch");
    const float* s = inputs[i]->data();
    for (std::size_t j = 0; j < n; ++j) d[j] += s[j];
  }
  return out;
}

dnn::Tensor softmax(const dnn::Tensor& input) {
  dnn::Tensor out = input;
  float max_v = out[0];
  for (std::size_t i = 1; i < out.size(); ++i) max_v = std::max(max_v, out[i]);
  float sum = 0.0f;
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = std::exp(out[i] - max_v);
    sum += out[i];
  }
  for (std::size_t i = 0; i < out.size(); ++i) out[i] /= sum;
  return out;
}

}  // namespace d3::exec
