// Learnable parameters for executable networks, and synthetic initialisation.
//
// The paper runs pre-trained ImageNet models; trained weights are unavailable
// offline, and VSM losslessness (the property under test) is a numerical identity
// that holds for *any* weights, so tests and examples use seeded random weights
// (see DESIGN.md, substitutions table).
#pragma once

#include <cstdint>
#include <vector>

#include "dnn/network.h"
#include "dnn/tensor.h"
#include "util/rng.h"

namespace d3::exec {

struct LayerWeights {
  // Conv: OIHW layout, size out_channels * in_channels * kh * kw.
  // Fully-connected: row-major [out_features][in_features].
  std::vector<float> weights;
  std::vector<float> bias;      // conv / fc, size = outputs
  std::vector<float> bn_scale;  // batch-norm folded scale, size = channels
  std::vector<float> bn_shift;  // batch-norm folded shift, size = channels
};

class WeightStore {
 public:
  WeightStore() = default;

  const LayerWeights& layer(dnn::LayerId id) const { return per_layer_.at(id); }
  std::size_t size() const { return per_layer_.size(); }

  // He-style random initialisation for every parameterised layer of `net`.
  // Deterministic in `seed`.
  static WeightStore random_for(const dnn::Network& net, std::uint64_t seed);

  // Adopts explicit per-layer parameters (one entry per network layer) — how a
  // remote node rebuilds the store it received over the wire (rpc::decode_weights
  // validates the sizes against the network before calling this).
  static WeightStore from_layers(std::vector<LayerWeights> layers);

 private:
  std::vector<LayerWeights> per_layer_;
};

// Uniform [-1, 1) tensor, deterministic in `rng` state. Stands in for ImageNet
// input frames.
dnn::Tensor random_tensor(const dnn::Shape& shape, util::Rng& rng);

}  // namespace d3::exec
