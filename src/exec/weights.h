// Learnable parameters for executable networks, and synthetic initialisation.
//
// The paper runs pre-trained ImageNet models; trained weights are unavailable
// offline, and VSM losslessness (the property under test) is a numerical identity
// that holds for *any* weights, so tests and examples use seeded random weights
// (see DESIGN.md, substitutions table).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dnn/network.h"
#include "dnn/tensor.h"
#include "util/rng.h"

namespace d3::core {
struct SerializablePlan;
}

namespace d3::exec {

struct LayerWeights {
  // Conv: OIHW layout, size out_channels * in_channels * kh * kw.
  // Fully-connected: row-major [out_features][in_features].
  std::vector<float> weights;
  std::vector<float> bias;      // conv / fc, size = outputs
  std::vector<float> bn_scale;  // batch-norm folded scale, size = channels
  std::vector<float> bn_shift;  // batch-norm folded shift, size = channels
};

class WeightStore {
 public:
  WeightStore() = default;

  const LayerWeights& layer(dnn::LayerId id) const { return per_layer_.at(id); }
  std::size_t size() const { return per_layer_.size(); }

  // He-style random initialisation for every parameterised layer of `net`.
  // Deterministic in `seed`.
  static WeightStore random_for(const dnn::Network& net, std::uint64_t seed);

  // Adopts explicit per-layer parameters (one entry per network layer) — how a
  // remote node rebuilds the store it received over the wire (rpc::decode_weights
  // validates the sizes against the network before calling this).
  static WeightStore from_layers(std::vector<LayerWeights> layers);

  // The layers node `node` executes under `plan`, as a per-layer mask: the
  // tier nodes device0 / edge0 / cloud0 own their tier's layers, and any other
  // edgeN name is a VSM tile worker owning exactly the fused stack (every
  // shard runs every stack layer on its tiles). Throws std::invalid_argument
  // for a node name the plan gives no work to.
  static std::vector<bool> layers_for_node(const core::SerializablePlan& plan,
                                           const std::string& node);

  // The per-tier slice of this store that `node` needs at boot: layers outside
  // layers_for_node(plan, node) come back empty. This is what a d3c deployment
  // bundle embeds — O(tier) parameter bytes instead of the full model.
  WeightStore shard_for_plan(const core::SerializablePlan& plan,
                             const std::string& node) const;

 private:
  std::vector<LayerWeights> per_layer_;
};

// Uniform [-1, 1) tensor, deterministic in `rng` state. Stands in for ImageNet
// input frames.
dnn::Tensor random_tensor(const dnn::Shape& shape, util::Rng& rng);

}  // namespace d3::exec
