// Reference executor: runs a Network on real data, layer by layer in topological
// order. This is the ground truth the VSM tiled executor is checked against, and
// what the runnable examples use.
#pragma once

#include <vector>

#include "dnn/network.h"
#include "dnn/tensor.h"
#include "exec/weights.h"

namespace d3::exec {

// Executes a single layer on explicit inputs (ordered as the layer declares
// them). Shared by the reference executor and the online execution engine.
dnn::Tensor run_layer(const dnn::Network& net, const WeightStore& weights, dnn::LayerId id,
                      const std::vector<const dnn::Tensor*>& inputs);

class Executor {
 public:
  // Both referents must outlive the executor.
  Executor(const dnn::Network& net, const WeightStore& weights);

  // Runs the whole network; returns the output of the last layer. All run*
  // methods are const and touch no shared mutable state, so one Executor may
  // serve concurrent callers (the concurrency tests rely on this to produce
  // reference outputs from many threads at once).
  dnn::Tensor run(const dnn::Tensor& input) const;

  // Reference outputs for a batch of requests, in order (the single-node
  // ground truth the batched/pipelined runtime is checked against).
  std::vector<dnn::Tensor> run_batch(const std::vector<dnn::Tensor>& inputs) const;

  // Runs the whole network; returns every layer's output (indexed by LayerId).
  std::vector<dnn::Tensor> run_all(const dnn::Tensor& input) const;

  // Runs only layers [first, last] (inclusive), which must form a contiguous
  // prefix-closed segment: every input of a layer in range is either the segment
  // input (`input`, replacing kNetworkInput or the output of layer first-1) or
  // produced inside the range. This executes one horizontal partition's slice of
  // a *chain* network on one tier. Throws if the range is not self-contained.
  dnn::Tensor run_segment(const dnn::Tensor& input, dnn::LayerId first,
                          dnn::LayerId last) const;

 private:
  const dnn::Network& net_;
  const WeightStore& weights_;
};

}  // namespace d3::exec
