// Reference executor: runs a Network on real data, layer by layer in topological
// order. This is the ground truth the VSM tiled executor is checked against, and
// what the runnable examples use.
#pragma once

#include <vector>

#include "dnn/network.h"
#include "dnn/tensor.h"
#include "exec/ops.h"
#include "exec/weights.h"

namespace d3::exec {

// Executes a single layer on explicit inputs (ordered as the layer declares
// them). Shared by the reference executor and the online execution engine.
// `ctx` threads the scratch arena and intra-op parallel_for into the kernels;
// the default context (thread-local arena, serial) is always correct.
dnn::Tensor run_layer(const dnn::Network& net, const WeightStore& weights, dnn::LayerId id,
                      const std::vector<const dnn::Tensor*>& inputs,
                      const OpContext& ctx = {});

class Executor {
 public:
  // Both referents must outlive the executor.
  Executor(const dnn::Network& net, const WeightStore& weights);

  // Installs an intra-op parallelism hook (e.g. a lambda over
  // runtime::ThreadPool::parallel_for): the conv kernels split their output
  // into disjoint blocks across it, so a single request uses all cores.
  // Outputs are bitwise-identical with or without the hook. Not thread-safe
  // against concurrent run* calls — install during setup. The hook itself must
  // tolerate concurrent callers if the executor is shared across threads
  // (ThreadPool::parallel_for does).
  void set_parallel_for(ParallelFor parallel_for) { parallel_for_ = std::move(parallel_for); }

  // Runs the whole network; returns the output of the last layer. All run*
  // methods are const and touch no shared mutable state, so one Executor may
  // serve concurrent callers (the concurrency tests rely on this to produce
  // reference outputs from many threads at once).
  dnn::Tensor run(const dnn::Tensor& input) const;

  // Reference outputs for a batch of requests, in order (the single-node
  // ground truth the batched/pipelined runtime is checked against).
  std::vector<dnn::Tensor> run_batch(const std::vector<dnn::Tensor>& inputs) const;

  // Runs the whole network; returns every layer's output (indexed by LayerId).
  std::vector<dnn::Tensor> run_all(const dnn::Tensor& input) const;

  // Runs only layers [first, last] (inclusive), which must form a contiguous
  // prefix-closed segment: every input of a layer in range is either the segment
  // input (`input`, replacing kNetworkInput or the output of layer first-1) or
  // produced inside the range. This executes one horizontal partition's slice of
  // a *chain* network on one tier. Throws if the range is not self-contained.
  dnn::Tensor run_segment(const dnn::Tensor& input, dnn::LayerId first,
                          dnn::LayerId last) const;

 private:
  OpContext context() const { return OpContext{nullptr, parallel_for_ ? &parallel_for_ : nullptr}; }

  const dnn::Network& net_;
  const WeightStore& weights_;
  ParallelFor parallel_for_;  // empty: serial kernels
};

}  // namespace d3::exec
