#include "exec/arena.h"

#include <algorithm>
#include <cstdint>

namespace d3::exec {

namespace {

// Bump offsets in units of 16 floats so every returned pointer stays on a
// 64-byte boundary.
constexpr std::size_t kAlignFloats = 16;
// Smallest chunk: 64 KiB. Typical packed-patch buffers are far larger, and the
// first allocation sizes its chunk to the request anyway.
constexpr std::size_t kMinChunkFloats = 16 * 1024;

std::size_t round_up(std::size_t n) {
  return (n + kAlignFloats - 1) / kAlignFloats * kAlignFloats;
}

}  // namespace

float* Arena::floats(std::size_t n) {
  const std::size_t need = round_up(std::max<std::size_t>(n, 1));
  // Advance through existing chunks looking for space; the tail a skipped
  // chunk strands is reclaimed by the next rewind/reset.
  while (active_ < chunks_.size()) {
    Chunk& c = chunks_[active_];
    if (c.capacity - c.used >= need) {
      float* p = c.base + c.used;
      c.used += need;
      return p;
    }
    ++active_;
  }
  // Grow geometrically so long kernel sequences settle into O(1) chunks.
  std::size_t cap = std::max(need, kMinChunkFloats);
  if (!chunks_.empty()) cap = std::max(cap, chunks_.back().capacity * 2);
  Chunk c;
  c.storage = std::make_unique<float[]>(cap + kAlignFloats);
  const auto addr = reinterpret_cast<std::uintptr_t>(c.storage.get());
  const std::uintptr_t aligned = (addr + 63) & ~static_cast<std::uintptr_t>(63);
  c.base = c.storage.get() + (aligned - addr) / sizeof(float);
  c.capacity = cap;
  c.used = need;
  ++chunk_allocations_;
  active_ = chunks_.size();
  chunks_.push_back(std::move(c));
  return chunks_.back().base;
}

void Arena::reset() {
  for (Chunk& c : chunks_) c.used = 0;
  active_ = 0;
}

std::size_t Arena::used() const {
  std::size_t total = 0;
  for (const Chunk& c : chunks_) total += c.used;
  return total;
}

std::size_t Arena::capacity() const {
  std::size_t total = 0;
  for (const Chunk& c : chunks_) total += c.capacity;
  return total;
}

Arena::Mark Arena::mark() const {
  if (chunks_.empty()) return {};
  return {active_, active_ < chunks_.size() ? chunks_[active_].used : 0};
}

void Arena::rewind(const Mark& m) {
  if (chunks_.empty()) return;
  for (std::size_t i = m.chunk + 1; i < chunks_.size(); ++i) chunks_[i].used = 0;
  if (m.chunk < chunks_.size()) chunks_[m.chunk].used = m.used;
  active_ = m.chunk;
}

Arena& Arena::thread_local_arena() {
  thread_local Arena arena;
  return arena;
}

}  // namespace d3::exec
