// The original scalar operator kernels, kept verbatim as the correctness
// oracle for the optimised kernels in ops.h.
//
// These are the branchy, bounds-checked-per-tap loops the repo started with:
// trivially auditable, obviously faithful to the paper's operator semantics,
// and far too slow for the production path. The fast kernels must produce
// BITWISE-identical outputs — same accumulation order per output element, same
// padding contributions — and tests/ops_kernels_test.cpp pins that equality
// over randomized shape/stride/pad/tile sweeps. bench_ops_kernels reports the
// speedup of the fast kernels against these (BENCH_ops.json).
#pragma once

#include "exec/ops.h"

namespace d3::exec::reference {

// Region-aware window ops (see ops.h for the Tile/Region contract).
Tile conv2d_region(const Tile& input, const dnn::LayerSpec& spec, const LayerWeights& w,
                   Region out, int out_full_w, int out_full_h);
Tile pool_region(const Tile& input, const dnn::LayerSpec& spec, Region out, int out_full_w,
                 int out_full_h);
Tile relu_region(Tile input);
Tile batch_norm_region(Tile input, const LayerWeights& w);

// Whole-tensor ops.
dnn::Tensor conv2d(const dnn::Tensor& input, const dnn::LayerSpec& spec,
                   const LayerWeights& w);
dnn::Tensor pool2d(const dnn::Tensor& input, const dnn::LayerSpec& spec);
dnn::Tensor global_avg_pool(const dnn::Tensor& input);
dnn::Tensor fully_connected(const dnn::Tensor& input, const dnn::LayerSpec& spec,
                            const LayerWeights& w);
dnn::Tensor relu(const dnn::Tensor& input);
dnn::Tensor batch_norm(const dnn::Tensor& input, const LayerWeights& w);
dnn::Tensor concat(const std::vector<const dnn::Tensor*>& inputs);
dnn::Tensor add(const std::vector<const dnn::Tensor*>& inputs);
dnn::Tensor softmax(const dnn::Tensor& input);

}  // namespace d3::exec::reference
