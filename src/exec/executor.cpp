#include "exec/executor.h"

#include <stdexcept>

#include "exec/ops.h"

namespace d3::exec {

Executor::Executor(const dnn::Network& net, const WeightStore& weights)
    : net_(net), weights_(weights) {}

dnn::Tensor run_layer(const dnn::Network& net, const WeightStore& weights, dnn::LayerId id,
                      const std::vector<const dnn::Tensor*>& ins, const OpContext& ctx) {
  const dnn::LayerSpec& spec = net.layer(id).spec;
  const LayerWeights& w = weights.layer(id);
  switch (spec.kind) {
    case dnn::LayerKind::kConv: return conv2d(*ins[0], spec, w, ctx);
    case dnn::LayerKind::kMaxPool:
    case dnn::LayerKind::kAvgPool: return pool2d(*ins[0], spec);
    case dnn::LayerKind::kGlobalAvgPool: return global_avg_pool(*ins[0]);
    case dnn::LayerKind::kFullyConnected: return fully_connected(*ins[0], spec, w);
    case dnn::LayerKind::kReLU: return relu(*ins[0]);
    case dnn::LayerKind::kBatchNorm: return batch_norm(*ins[0], w);
    case dnn::LayerKind::kConcat: return concat(ins);
    case dnn::LayerKind::kAdd: return add(ins);
    case dnn::LayerKind::kSoftmax: return softmax(*ins[0]);
  }
  throw std::logic_error("Executor: unhandled layer kind");
}

std::vector<dnn::Tensor> Executor::run_all(const dnn::Tensor& input) const {
  if (!(input.shape() == net_.input_shape()))
    throw std::invalid_argument("Executor::run_all: input shape " + input.shape().to_string() +
                                " != network input " + net_.input_shape().to_string());
  std::vector<dnn::Tensor> outputs;
  outputs.reserve(net_.num_layers());
  // Layers are stored in insertion order, which is a topological order by
  // construction (a layer may only reference earlier ids).
  for (dnn::LayerId id = 0; id < net_.num_layers(); ++id) {
    std::vector<const dnn::Tensor*> ins;
    ins.reserve(net_.layer(id).inputs.size());
    for (const dnn::LayerId in : net_.layer(id).inputs)
      ins.push_back(in == dnn::kNetworkInput ? &input : &outputs[in]);
    outputs.push_back(run_layer(net_, weights_, id, ins, context()));
  }
  return outputs;
}

dnn::Tensor Executor::run(const dnn::Tensor& input) const {
  auto outputs = run_all(input);
  if (outputs.empty()) throw std::logic_error("Executor::run: empty network");
  return std::move(outputs.back());
}

std::vector<dnn::Tensor> Executor::run_batch(const std::vector<dnn::Tensor>& inputs) const {
  std::vector<dnn::Tensor> outputs;
  outputs.reserve(inputs.size());
  for (const dnn::Tensor& input : inputs) outputs.push_back(run(input));
  return outputs;
}

dnn::Tensor Executor::run_segment(const dnn::Tensor& input, dnn::LayerId first,
                                  dnn::LayerId last) const {
  if (first > last || last >= net_.num_layers())
    throw std::invalid_argument("Executor::run_segment: bad range");
  std::vector<dnn::Tensor> outputs(net_.num_layers());
  for (dnn::LayerId id = first; id <= last; ++id) {
    std::vector<const dnn::Tensor*> ins;
    for (const dnn::LayerId in : net_.layer(id).inputs) {
      const bool is_segment_input =
          (in == dnn::kNetworkInput && first == 0) || (in + 1 == first);
      if (is_segment_input) {
        ins.push_back(&input);
      } else if (in != dnn::kNetworkInput && in >= first && in <= last) {
        ins.push_back(&outputs[in]);
      } else {
        throw std::invalid_argument("Executor::run_segment: layer '" + net_.layer(id).spec.name +
                                    "' reads outside the segment");
      }
    }
    outputs[id] = run_layer(net_, weights_, id, ins, context());
  }
  return std::move(outputs[last]);
}

}  // namespace d3::exec
