// Zoo explorer: architecture and cost summary of the five paper models, plus
// where HPA places them under each network condition — a quick way to see how
// the partition frontier reacts to the backbone quality.
#include <iostream>

#include "core/hpa.h"
#include "dnn/model_zoo.h"
#include "net/conditions.h"
#include "profile/profiler.h"
#include "util/table.h"

using namespace d3;

int main() {
  util::Table summary({"model", "layers", "convs", "params (M)", "GFLOPs", "topology"});
  for (const auto& net : dnn::zoo::paper_models()) {
    int convs = 0;
    for (dnn::LayerId id = 0; id < net.num_layers(); ++id)
      convs += net.layer(id).spec.kind == dnn::LayerKind::kConv;
    summary.row()
        .cell(net.name())
        .cell(net.num_layers())
        .cell(convs)
        .cell(static_cast<double>(net.total_params()) / 1e6, 1)
        .cell(static_cast<double>(net.total_flops()) / 1e9, 2)
        .cell(net.is_chain() ? "chain" : "DAG");
  }
  summary.print(std::cout, "Model zoo (3x224x224 input)");
  std::cout << "\n";

  const auto estimators = profile::Profiler::profile_tiers(profile::paper_testbed());
  for (const auto& condition : net::paper_conditions()) {
    util::Table placement({"model", "device", "edge", "cloud", "theta (ms)"});
    for (const auto& net : dnn::zoo::paper_models()) {
      const auto problem = core::make_problem(net, estimators, condition);
      const auto result = core::hpa(problem);
      std::size_t counts[3] = {0, 0, 0};
      for (std::size_t v = 1; v < problem.size(); ++v)
        ++counts[static_cast<std::size_t>(core::index(result.assignment.tier[v]))];
      placement.row()
          .cell(net.name())
          .cell(counts[0])
          .cell(counts[1])
          .cell(counts[2])
          .cell(result.total_latency_seconds * 1e3, 1);
    }
    placement.print(std::cout, "HPA layer placement (" + condition.name + ")");
    std::cout << "\n";
  }
  return 0;
}
