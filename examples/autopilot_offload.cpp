// Autopilot scenario: the workload the paper's introduction motivates.
//
// A mobile robot runs Darknet-53 (the YOLOv3 backbone) for object detection at
// 30 FPS. It drives through areas with fluctuating backhaul quality; shipping
// raw camera frames to the cloud is both slow and privacy-sensitive, so the
// robot uses D3: HPA partitions the backbone across robot / roadside edge box /
// cloud, and the adaptive repartitioner reacts to bandwidth changes — absorbing
// jitter below its hysteresis thresholds, re-partitioning when the uplink
// really shifts.
#include <iostream>

#include "core/adaptive.h"
#include "dnn/model_zoo.h"
#include "net/dynamics.h"
#include "profile/profiler.h"
#include "sim/pipeline.h"
#include "util/table.h"
#include "util/units.h"

using namespace d3;

int main() {
  const dnn::Network net = dnn::zoo::darknet53();
  const net::NetworkCondition base = net::wifi();

  // Regression-estimated weights, as the deployed system would use.
  const auto estimators = profile::Profiler::profile_tiers(profile::paper_testbed());
  core::PartitionProblem problem = core::make_problem(net, estimators, base);
  core::AdaptiveRepartitioner repartitioner(std::move(problem));

  // A 120 s drive: the LAN->cloud uplink follows a bounded random walk between
  // 25% and 200% of nominal (tunnel, congestion, good coverage...).
  util::Rng rng(99);
  const net::BandwidthTrace trace =
      net::BandwidthTrace::random_walk(base, 120.0, 5.0, 0.35, 0.25, 2.0, rng);

  util::Table timeline({"t (s)", "uplink (Mbps)", "action", "moved", "frame latency (ms)"});
  const core::PartitionProblem exact =
      core::make_problem_exact(net, profile::paper_testbed(), base);
  for (const auto& step : trace.steps()) {
    const net::NetworkCondition now = trace.condition_at(base, step.start_seconds);
    const auto moved = repartitioner.update_condition(now);
    // Evaluate the current plan on ground-truth times under the current network.
    core::PartitionProblem eval = exact;
    eval.condition = now;
    const sim::PipelinePlan pipeline =
        sim::build_pipeline(eval, repartitioner.assignment());
    timeline.row()
        .cell(step.start_seconds, 0)
        .cell(step.edge_cloud_mbps, 1)
        .cell(moved.empty() ? "-" : "repartition")
        .cell(moved.size())
        .cell(util::ms(pipeline.frame_latency_seconds()), 1);
  }
  timeline.print(std::cout, "Darknet-53 autopilot drive (Wi-Fi LAN, dynamic backhaul)");

  std::cout << "\nadaptation summary: " << repartitioner.full_repartitions()
            << " repartitions, " << repartitioner.absorbed_updates()
            << " fluctuations absorbed by hysteresis\n"
            << "Raw frames never leave the robot unprocessed unless the plan "
               "says so - the privacy argument of the paper's introduction.\n";
  return 0;
}
