// Edge-cluster parallelism: VSM on the paper's Fig. 12 setup.
//
// HPA leaves VGG-16's convolutional body on the edge tier (Table II: the edge
// is the pipeline bottleneck). VSM splits the stack into fused tile stacks, one
// per edge node; this example sweeps the pool size, reports the speedup and the
// halo redundancy, and demonstrates numerically — on a scaled-down stack with
// real tensors — that the tiled result is bit-identical to serial execution.
#include <iostream>
#include <numeric>

#include "core/d3.h"
#include "core/hpa.h"
#include "core/vsm.h"
#include "core/vsm_executor.h"
#include "dnn/model_zoo.h"
#include "exec/weights.h"
#include "net/conditions.h"
#include "profile/profiler.h"
#include "util/table.h"
#include "util/units.h"

using namespace d3;

int main() {
  // --- Plan: VGG-16's edge-resident conv stack across 1..16 nodes ---------
  const dnn::Network vgg = dnn::zoo::vgg16();
  const core::PartitionProblem problem =
      core::make_problem_exact(vgg, profile::paper_testbed(), net::wifi());
  const core::Assignment assignment = core::hpa(problem).assignment;

  std::vector<dnn::LayerId> edge_layers;
  for (dnn::LayerId id = 0; id < vgg.num_layers(); ++id)
    if (assignment.tier[dnn::Network::vertex_of(id)] == core::Tier::kEdge)
      edge_layers.push_back(id);
  const auto stack = core::longest_tileable_run(vgg, edge_layers);
  if (stack.empty()) {
    std::cout << "HPA left no tileable stack on the edge; nothing to parallelise\n";
    return 0;
  }

  const profile::NodeSpec edge_node = profile::i7_8700();
  const dnn::Shape out = vgg.layer(stack.back()).output_shape;
  util::Table table({"edge nodes", "grid", "edge stage (ms)", "speedup", "redundancy"});
  for (const int nodes : {1, 2, 4, 9, 16}) {
    const auto [rows, cols] = core::choose_tile_grid(nodes, out.h, out.w);
    const auto plan = core::make_fused_tile_plan(vgg, stack, rows, cols);
    const double serial = core::serial_stack_latency(vgg, plan, edge_node);
    const double parallel = core::parallel_stack_latency(vgg, plan, edge_node);
    table.row()
        .cell(std::int64_t{nodes})
        .cell(std::to_string(rows) + "x" + std::to_string(cols))
        .cell(util::ms(parallel), 1)
        .cell(serial / parallel, 2)
        .cell(core::redundancy_factor(vgg, plan), 2);
  }
  table.print(std::cout, "VGG-16 conv body (" + std::to_string(stack.size()) +
                             " fused layers) across an i7-8700 edge pool");
  std::cout << "Halo overlap grows with the grid: the paper's explanation for the "
               "edge stage not shrinking 4x on 4 nodes.\n\n";

  // --- Prove losslessness with real arithmetic ----------------------------
  // Same architecture pattern at 64x64 so the demo runs in milliseconds.
  dnn::Network small("vgg-block", dnn::Shape{3, 64, 64});
  dnn::LayerId x = small.conv("c1", dnn::kNetworkInput, 8, 3, 1, 1);
  x = small.relu("r1", x);
  x = small.conv("c2", x, 8, 3, 1, 1);
  x = small.relu("r2", x);
  x = small.max_pool("p1", x, 2, 2);
  x = small.conv("c3", x, 16, 3, 1, 1);
  x = small.relu("r3", x);
  std::vector<dnn::LayerId> ids(small.num_layers());
  std::iota(ids.begin(), ids.end(), 0);

  const exec::WeightStore weights = exec::WeightStore::random_for(small, 7);
  util::Rng rng(8);
  const dnn::Tensor input = exec::random_tensor(small.input_shape(), rng);
  const dnn::Tensor serial = core::run_stack_serial(small, weights, input, ids);
  const auto plan = core::make_fused_tile_plan(small, ids, 2, 2);
  const dnn::Tensor tiled = core::run_fused_tiles(small, weights, input, plan);

  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < serial.size(); ++i) mismatches += serial[i] != tiled[i];
  std::cout << "numerical check on a real " << small.input_shape().to_string()
            << " tensor: " << serial.size() << " output elements, " << mismatches
            << " mismatches -> " << (mismatches == 0 ? "LOSSLESS" : "BROKEN") << "\n";
  return mismatches == 0 ? 0 : 1;
}
