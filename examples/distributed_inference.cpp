// Distributed inference: the online execution engine (Fig. 2) running a real
// synergistic inference across device, edge (with VSM workers) and cloud — and
// proving, on actual tensors, that the distributed answer equals a single
// machine's bit for bit, both with zero-copy in-process nodes and with every
// inter-node tensor round-tripping the binary wire format.
//
// For the same engine spread across real OS processes (one d3_node worker per
// tier over localhost TCP), see rpc/socket_transport.h and the
// socket_transport_test — the API is identical, only Options::transport
// changes.
#include <iostream>
#include <memory>

#include "core/plan_io.h"
#include "core/vsm.h"
#include "dnn/model_zoo.h"
#include "exec/executor.h"
#include "rpc/transport.h"
#include "runtime/engine.h"
#include "util/table.h"

using namespace d3;

int main() {
  const dnn::Network net = dnn::zoo::tiny_chain();
  const exec::WeightStore weights = exec::WeightStore::random_for(net, 5);
  util::Rng rng(6);
  const dnn::Tensor frame = exec::random_tensor(net.input_shape(), rng);

  // A didactic three-tier plan exercising every engine path (for this tiny CNN
  // HPA would sensibly keep everything on one node — see zoo_explorer for real
  // HPA placements): conv1+relu on the device, the middle conv block tiled 2x2
  // across four edge workers, the fc tail in the cloud.
  // Layer ids: conv1(0) relu1(1) pool1(2) conv2(3) relu2(4) pool2(5) fc1(6)...
  core::Assignment assignment;
  assignment.tier.assign(net.num_layers() + 1, core::Tier::kCloud);
  assignment.tier[0] = core::Tier::kDevice;
  for (const dnn::LayerId id : {0, 1})
    assignment.tier[dnn::Network::vertex_of(id)] = core::Tier::kDevice;
  const std::vector<dnn::LayerId> edge_stack = {2, 3, 4, 5};
  for (const dnn::LayerId id : edge_stack)
    assignment.tier[dnn::Network::vertex_of(id)] = core::Tier::kEdge;
  const core::FusedTilePlan vsm = core::make_fused_tile_plan(net, edge_stack, 2, 2);

  // The offline framework ships the plan to the online nodes as text; each
  // node parses and validates it against its copy of the model. (Worker
  // processes receive the same plan in binary wire form — serialize_plan_binary.)
  const std::string wire =
      core::serialize_plan(core::SerializablePlan{net.name(), assignment, vsm});
  std::cout << "deployment plan on the wire:\n" << wire << "\n";
  const core::SerializablePlan received = core::parse_plan(wire, net);

  const runtime::OnlineEngine engine(net, weights, received.assignment, received.vsm);
  const runtime::InferenceResult result = engine.infer(frame);

  util::Table log({"#", "from", "to", "payload", "bytes"});
  int i = 0;
  for (const auto& m : result.messages)
    log.row().cell(++i).cell(m.from_node).cell(m.to_node).cell(m.payload).cell(m.bytes);
  log.print(std::cout, "message transcript (" + net.name() + ")");

  std::cout << "\nlayers executed: device=" << result.layers_executed[0]
            << " edge=" << result.layers_executed[1]
            << " cloud=" << result.layers_executed[2] << "\n"
            << "tier-boundary bytes: d->e " << result.device_edge_bytes << ", e->c "
            << result.edge_cloud_bytes << ", d->c " << result.device_cloud_bytes << "\n";

  const dnn::Tensor reference = exec::Executor(net, weights).run(frame);
  const auto identical_to_reference = [&](const dnn::Tensor& output) {
    bool same = reference.shape() == output.shape();
    for (std::size_t j = 0; same && j < reference.size(); ++j)
      same = reference[j] == output[j];
    return same;
  };
  const bool identical = identical_to_reference(result.output);
  std::cout << "distributed output == single-node reference (bitwise): "
            << (identical ? "YES - lossless synergistic inference" : "NO (bug!)") << "\n";

  // Same plan, but every inter-node tensor now crosses the binary wire format
  // (encode_envelope -> decode_envelope) and each consumer computes on the
  // decoded copy — losslessness must survive serialization too.
  auto loopback = std::make_shared<rpc::SerializingLoopback>();
  runtime::OnlineEngine::Options options;
  options.transport = loopback;
  const runtime::OnlineEngine wired_engine(net, weights, received.assignment, received.vsm,
                                           options);
  const runtime::InferenceResult wired = wired_engine.infer(frame);
  const rpc::SerializingLoopback::Stats stats = loopback->stats();
  const bool wired_identical = identical_to_reference(wired.output);
  std::cout << "\nserializing-loopback transport: " << stats.messages
            << " envelopes, " << stats.payload_bytes << " payload bytes, "
            << stats.wire_bytes << " framed bytes\n"
            << "wire-format output == reference (bitwise): "
            << (wired_identical ? "YES - losslessness survives the wire" : "NO (bug!)")
            << "\n";

  return identical && wired_identical ? 0 : 1;
}
