// Quickstart: the 60-second tour of the D3 library.
//
//  1. Build a small CNN with the dnn builder API.
//  2. Profile the device/edge/cloud testbed and plan a deployment with
//     D3System (regression estimators -> HPA -> VSM).
//  3. Execute the plan's VSM stack on real tensors and verify losslessness.
//  4. Simulate a 30 FPS camera stream through the partitioned pipeline.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/quickstart
#include <iostream>

#include "core/d3.h"
#include "core/vsm_executor.h"
#include "dnn/model_zoo.h"
#include "exec/executor.h"
#include "net/conditions.h"
#include "sim/experiment.h"
#include "util/table.h"
#include "util/units.h"

using namespace d3;

int main() {
  // --- 1. A small convolutional classifier -------------------------------
  dnn::Network net("quickstart-cnn", dnn::Shape{3, 64, 64});
  dnn::LayerId x = net.conv("conv1", dnn::kNetworkInput, 16, 3, 1, 1);
  x = net.relu("relu1", x);
  x = net.conv("conv2", x, 16, 3, 1, 1);
  x = net.relu("relu2", x);
  x = net.max_pool("pool1", x, 2, 2);
  x = net.conv("conv3", x, 32, 3, 1, 1);
  x = net.relu("relu3", x);
  x = net.global_avg_pool("gap", x);
  x = net.fully_connected("fc", x, 10);
  net.softmax("softmax", x);
  std::cout << "network '" << net.name() << "': " << net.num_layers() << " layers, "
            << net.total_flops() / 1e6 << " MFLOPs, " << net.total_params() << " params\n\n";

  // --- 2. Plan a deployment over device/edge/cloud -----------------------
  core::D3Options options;
  options.edge_nodes = 4;  // enable VSM across four edge nodes
  const core::D3System system(net, profile::paper_testbed(), options);
  const core::DeploymentPlan plan = system.plan(net::wifi());

  util::Table tiers({"tier", "layers"});
  for (const core::Tier t : core::kAllTiers)
    tiers.row().cell(std::string(core::tier_name(t))).cell(plan.vertices_on(t));
  tiers.print(std::cout, "HPA deployment (Wi-Fi)");
  std::cout << "estimated total latency: " << util::ms(plan.estimated_total_latency)
            << " ms\n\n";

  // --- 3. Lossless VSM execution on real tensors -------------------------
  if (plan.vsm) {
    const exec::WeightStore weights = exec::WeightStore::random_for(net, /*seed=*/1);
    util::Rng rng(2);
    // Input to the stack = output of everything before it (here the stack
    // starts at the first layer, so it is the network input).
    const dnn::Tensor input = exec::random_tensor(net.input_shape(), rng);
    const dnn::Tensor serial =
        core::run_stack_serial(net, weights, input, plan.vsm->stack);
    const dnn::Tensor tiled = core::run_fused_tiles(net, weights, input, *plan.vsm);
    bool identical = serial.shape() == tiled.shape();
    for (std::size_t i = 0; identical && i < serial.size(); ++i)
      identical = serial[i] == tiled[i];
    std::cout << "VSM: " << plan.vsm->num_tiles() << " fused tiles over "
              << plan.vsm->stack.size() << " layers, redundancy "
              << core::redundancy_factor(net, *plan.vsm) << "\n"
              << "tiled output == serial output (bitwise): "
              << (identical ? "YES - lossless" : "NO (bug!)") << "\n\n";
  } else {
    std::cout << "VSM: no conv stack on the edge for this plan\n\n";
  }

  // --- 4. Stream simulation ----------------------------------------------
  sim::ExperimentConfig config;
  config.stream.duration_seconds = 10;
  const sim::MethodResult device = sim::run_method(net, sim::Method::kDeviceOnly, config);
  const sim::MethodResult d3 = sim::run_method(net, sim::Method::kHpaVsm, config);
  std::cout << "device-only: " << util::ms(device.frame_latency_seconds) << " ms/frame\n"
            << "D3 (HPA+VSM): " << util::ms(d3.frame_latency_seconds) << " ms/frame  ("
            << device.frame_latency_seconds / d3.frame_latency_seconds << "x speedup, "
            << d3.stream.frames_completed << "/" << d3.stream.frames_offered
            << " frames in the 30 FPS stream)\n";
  return 0;
}
