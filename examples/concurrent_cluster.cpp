// Example: the concurrent tiered runtime end to end.
//
// Builds a three-tier plan for a small CNN with a VSM fused-tile stack on the
// edge, then serves a burst of requests two ways:
//   1. one by one through the threaded engine (tiles on real pool threads),
//   2. pipelined through runtime::BatchScheduler (device/edge/cloud stages
//      overlap across in-flight requests).
// Every output is checked bitwise against the single-node reference, and the
// first request's message transcript is printed to show the deterministic
// sequence numbering.
#include <chrono>
#include <iostream>
#include <vector>

#include "core/vsm.h"
#include "dnn/model_zoo.h"
#include "exec/executor.h"
#include "runtime/batch_scheduler.h"
#include "runtime/engine.h"
#include "util/rng.h"
#include "util/units.h"

using namespace d3;

int main() {
  const dnn::Network net = dnn::zoo::tiny_chain();
  const exec::WeightStore weights = exec::WeightStore::random_for(net, 42);

  // Plan: first six layers on the edge (tiled 2x2 across four edge workers),
  // the classifier tail in the cloud, ingest on the device.
  core::Assignment plan;
  plan.tier.assign(net.num_layers() + 1, core::Tier::kCloud);
  plan.tier[0] = core::Tier::kDevice;
  std::vector<dnn::LayerId> stack = {0, 1, 2, 3, 4, 5};
  for (const dnn::LayerId id : stack)
    plan.tier[dnn::Network::vertex_of(id)] = core::Tier::kEdge;
  const core::FusedTilePlan vsm = core::make_fused_tile_plan(net, stack, 2, 2);

  runtime::OnlineEngine::Options options;
  options.vsm_workers = 4;
  const runtime::OnlineEngine engine(net, weights, plan, vsm, options);
  std::cout << "engine: " << engine.vsm_workers() << " VSM workers, "
            << vsm.num_tiles() << " tiles per request\n\n";

  // A burst of eight frames plus their single-node references.
  util::Rng rng(7);
  std::vector<dnn::Tensor> frames;
  for (int k = 0; k < 8; ++k) frames.push_back(exec::random_tensor(net.input_shape(), rng));
  const std::vector<dnn::Tensor> references = exec::Executor(net, weights).run_batch(frames);

  const auto identical = [](const dnn::Tensor& a, const dnn::Tensor& b) {
    if (!(a.shape() == b.shape())) return false;
    for (std::size_t i = 0; i < a.size(); ++i)
      if (a[i] != b[i]) return false;
    return true;
  };

  // 1. Threaded engine, one request at a time.
  auto t0 = std::chrono::steady_clock::now();
  bool lossless = true;
  runtime::InferenceResult first;
  for (std::size_t k = 0; k < frames.size(); ++k) {
    runtime::InferenceResult r = engine.infer(frames[k]);
    lossless &= identical(r.output, references[k]);
    if (k == 0) first = std::move(r);
  }
  const double serial_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  std::cout << "serial over threaded engine: " << util::ms(serial_s) << " ms, lossless="
            << (lossless ? "yes" : "NO") << "\n";

  // 2. The same burst pipelined across the tiers.
  t0 = std::chrono::steady_clock::now();
  runtime::BatchScheduler scheduler(engine);
  for (const dnn::Tensor& frame : frames) scheduler.submit(frame);
  const std::vector<runtime::InferenceResult> results = scheduler.drain();
  const double pipelined_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  for (std::size_t k = 0; k < results.size(); ++k)
    lossless &= identical(results[k].output, references[k]);
  std::cout << "pipelined through BatchScheduler: " << util::ms(pipelined_s)
            << " ms, lossless=" << (lossless ? "yes" : "NO") << "\n\n";

  std::cout << "request 0 transcript (" << first.messages.size() << " messages):\n";
  for (const runtime::MessageRecord& m : first.messages)
    std::cout << "  #" << m.seq << "  " << m.from_node << " -> " << m.to_node << "  "
              << m.payload << "  (" << m.bytes << " B)\n";
  std::cout << "\nboundary bytes: device->edge " << first.device_edge_bytes
            << ", edge->cloud " << first.edge_cloud_bytes << ", vsm scatter "
            << first.vsm_scatter_bytes << ", gather " << first.vsm_gather_bytes << "\n";
  return lossless ? 0 : 1;
}
